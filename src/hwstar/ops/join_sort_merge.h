#ifndef HWSTAR_OPS_JOIN_SORT_MERGE_H_
#define HWSTAR_OPS_JOIN_SORT_MERGE_H_

#include "hwstar/ops/relation.h"

namespace hwstar::ops {

/// Options for the sort-merge join.
struct SortMergeJoinOptions {
  bool materialize = false;
  bool inputs_sorted = false;  ///< skip the sort phase when pre-sorted
};

/// Sort-merge equi-join: radix-sorts both relations by key, then merges.
/// The third contender in the main-memory join debate: all its memory
/// traffic is sequential (sort passes + one merge scan), trading more total
/// work for prefetcher-friendly access. Wins once wide SIMD/merge hardware
/// or pre-sorted inputs tip the balance -- which E2 can show by setting
/// inputs_sorted.
JoinResult SortMergeJoin(const Relation& build, const Relation& probe,
                         const SortMergeJoinOptions& options = {});

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_JOIN_SORT_MERGE_H_
