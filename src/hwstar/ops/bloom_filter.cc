#include "hwstar/ops/bloom_filter.h"

#include "hwstar/common/bits.h"
#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"
#include "hwstar/ops/probe_kernels.h"
#include "hwstar/simd/kernels.h"

namespace hwstar::ops {

namespace {

/// The h2 seed both filters derive their second hash from.
constexpr uint64_t kH2Seed = 0x9e3779b97f4a7c15ULL;

/// Derives k probe positions from one 64-bit hash via double hashing
/// (Kirsch-Mitzenmacher): position_i = h1 + i * h2. The bit count is a
/// power of two, so reduction is a mask (a runtime 64-bit divide would
/// cost more than the cache access the filter is meant to save).
inline uint64_t ProbePos(uint64_t h1, uint64_t h2, uint32_t i,
                         uint64_t mask) {
  return (h1 + static_cast<uint64_t>(i) * h2) & mask;
}

uint32_t OptimalHashes(uint32_t bits_per_key) {
  uint32_t k = static_cast<uint32_t>(bits_per_key * 0.693 + 0.5);
  if (k < 1) k = 1;
  if (k > 16) k = 16;
  return k;
}

/// Expands h2 into the 8-word (512-bit) probe mask of a blocked-filter
/// query. Building the mask and testing (block & mask) == mask with one
/// vector compare replaces the k-iteration bit-test loop; the set of bits
/// is identical, so the answer is too (the scalar loop merely early-exits
/// where the block test evaluates all words).
inline void BuildBlockMask(uint64_t h2, uint32_t num_hashes,
                           uint64_t mask[8]) {
  for (int w = 0; w < 8; ++w) mask[w] = 0;
  for (uint32_t i = 0; i < num_hashes; ++i) {
    const uint32_t bit = static_cast<uint32_t>(
        ((h2 >> ((i * 9) % 55)) ^ (h2 << (i % 7))) &
        (BlockedBloomFilter::kBlockBits - 1));
    mask[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

}  // namespace

BloomFilter::BloomFilter(uint64_t expected, uint32_t bits_per_key) {
  HWSTAR_CHECK(bits_per_key >= 1);
  if (expected < 1) expected = 1;
  bit_count_ = bits::NextPowerOfTwo(expected * bits_per_key);
  if (bit_count_ < 64) bit_count_ = 64;  // at least one word
  num_hashes_ = OptimalHashes(bits_per_key);
  words_.assign(bit_count_ / 64, 0);
}

void BloomFilter::Add(uint64_t key) {
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ kH2Seed) | 1;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t pos = ProbePos(h1, h2, i, bit_count_ - 1);
    words_[pos >> 6] |= uint64_t{1} << (pos & 63);
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  const uint64_t h1 = Mix64(key);
  const uint64_t h2 = Mix64(key ^ kH2Seed) | 1;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t pos = ProbePos(h1, h2, i, bit_count_ - 1);
    if ((words_[pos >> 6] & (uint64_t{1} << (pos & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::MayContainBatch(const uint64_t* keys, size_t n, bool* out,
                                  uint32_t group_size) const {
  const simd::Backend be = simd::ActiveBackend();
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t G = decltype(g)::value;
    uint64_t h1s[G];
    uint64_t h2s[G];
    const uint64_t mask = bit_count_ - 1;
    // Explicit group loop (rather than GroupPrefetchLoop's per-lane
    // callbacks) so the whole group's hash phase runs as two
    // data-parallel Mix64Batch sweeps before any prefetch issues.
    size_t i = 0;
    for (; i + G <= n; i += G) {
      simd::Mix64Batch(be, keys + i, G, h1s);
      simd::Mix64Batch(be, keys + i, G, h2s, kH2Seed);
      for (uint32_t lane = 0; lane < G; ++lane) {
        h2s[lane] |= 1;
        HWSTAR_PREFETCH(&words_[ProbePos(h1s[lane], h2s[lane], 0, mask) >> 6]);
      }
      for (uint32_t lane = 0; lane < G; ++lane) {
        const uint64_t h1 = h1s[lane];
        const uint64_t h2 = h2s[lane];
        bool may = true;
        for (uint32_t p = 0; p < num_hashes_; ++p) {
          // Keep one probe ahead in flight within the key as well.
          if (p + 1 < num_hashes_) {
            HWSTAR_PREFETCH(&words_[ProbePos(h1, h2, p + 1, mask) >> 6]);
          }
          const uint64_t pos = ProbePos(h1, h2, p, mask);
          if ((words_[pos >> 6] & (uint64_t{1} << (pos & 63))) == 0) {
            may = false;
            break;
          }
        }
        out[i + lane] = may;
      }
    }
    for (; i < n; ++i) out[i] = MayContain(keys[i]);
  });
}

double BloomFilter::MeasureFpp(
    const std::vector<uint64_t>& absent_sample) const {
  if (absent_sample.empty()) return 0.0;
  uint64_t fp = 0;
  for (uint64_t k : absent_sample) fp += MayContain(k);
  return static_cast<double>(fp) / static_cast<double>(absent_sample.size());
}

BlockedBloomFilter::BlockedBloomFilter(uint64_t expected,
                                       uint32_t bits_per_key) {
  HWSTAR_CHECK(bits_per_key >= 1);
  if (expected < 1) expected = 1;
  const uint64_t total_bits = bits::NextPowerOfTwo(expected * bits_per_key);
  num_blocks_ = total_bits / kBlockBits;
  if (num_blocks_ < 1) num_blocks_ = 1;
  num_hashes_ = OptimalHashes(bits_per_key);
  words_.assign(num_blocks_ * 8, 0);
}

void BlockedBloomFilter::Add(uint64_t key) {
  const uint64_t h1 = Mix64(key);
  // High bits pick the block; the rest seed the in-block positions.
  const uint64_t block = h1 & (num_blocks_ - 1);  // num_blocks_ is pow2
  const uint64_t h2 = Mix64(key ^ kH2Seed);
  uint64_t* base = &words_[block * 8];
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint32_t bit = static_cast<uint32_t>(
        ((h2 >> ((i * 9) % 55)) ^ (h2 << (i % 7))) & (kBlockBits - 1));
    base[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

bool BlockedBloomFilter::MayContain(uint64_t key) const {
  const uint64_t h1 = Mix64(key);
  const uint64_t block = h1 & (num_blocks_ - 1);
  const uint64_t h2 = Mix64(key ^ kH2Seed);
  uint64_t mask[8];
  BuildBlockMask(h2, num_hashes_, mask);
  return simd::TestBlock512(simd::ActiveBackend(), &words_[block * 8], mask);
}

void BlockedBloomFilter::MayContainBatch(const uint64_t* keys, size_t n,
                                         bool* out,
                                         uint32_t group_size) const {
  const simd::Backend be = simd::ActiveBackend();
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t G = decltype(g)::value;
    uint64_t blocks[G];
    uint64_t h2s[G];
    // Explicit group loop: the hash phase runs as two data-parallel
    // Mix64Batch sweeps over the group, each block's single line is
    // prefetched, and the test phase answers each query with one
    // 512-bit vector compare against the line the prefetch pulled in.
    // Group prefetching hides the miss; SIMD collapses the k-bit-test
    // loop that used to sit on top of the hit -- the two compose.
    size_t i = 0;
    for (; i + G <= n; i += G) {
      simd::Mix64Batch(be, keys + i, G, blocks);
      simd::Mix64Batch(be, keys + i, G, h2s, kH2Seed);
      for (uint32_t lane = 0; lane < G; ++lane) {
        blocks[lane] &= num_blocks_ - 1;
        HWSTAR_PREFETCH(&words_[blocks[lane] * 8]);
      }
      for (uint32_t lane = 0; lane < G; ++lane) {
        uint64_t mask[8];
        BuildBlockMask(h2s[lane], num_hashes_, mask);
        out[i + lane] =
            simd::TestBlock512(be, &words_[blocks[lane] * 8], mask);
      }
    }
    for (; i < n; ++i) out[i] = MayContain(keys[i]);
  });
}

double BlockedBloomFilter::MeasureFpp(
    const std::vector<uint64_t>& absent_sample) const {
  if (absent_sample.empty()) return 0.0;
  uint64_t fp = 0;
  for (uint64_t k : absent_sample) fp += MayContain(k);
  return static_cast<double>(fp) / static_cast<double>(absent_sample.size());
}

}  // namespace hwstar::ops
