#include "hwstar/ops/selection.h"

#include <bit>

#include "hwstar/common/macros.h"
#include "hwstar/simd/kernels.h"

namespace hwstar::ops {

uint64_t SelectBranching(std::span<const int64_t> values, int64_t lo,
                         int64_t hi, std::vector<uint32_t>* out) {
  out->clear();
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= lo && values[i] < hi) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
  return out->size();
}

uint64_t SelectBranchFree(std::span<const int64_t> values, int64_t lo,
                          int64_t hi, std::vector<uint32_t>* out) {
  out->resize(values.size());
  uint32_t* dst = out->data();
  uint64_t k = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    dst[k] = static_cast<uint32_t>(i);
    k += static_cast<uint64_t>(values[i] >= lo) &
         static_cast<uint64_t>(values[i] < hi);
  }
  out->resize(k);
  return k;
}

void BuildSelectionBitmap(std::span<const int64_t> values, int64_t lo,
                          int64_t hi, std::vector<uint64_t>* bitmap) {
  const size_t n = values.size();
  bitmap->resize((n + 63) / 64);
  simd::BuildRangeBitmap(simd::ActiveBackend(), values.data(), n, lo, hi,
                         bitmap->data());
}

uint64_t BitmapToPositions(const std::vector<uint64_t>& bitmap,
                           uint64_t num_values, std::vector<uint32_t>* out) {
  out->clear();
  for (size_t w = 0; w < bitmap.size(); ++w) {
    uint64_t word = bitmap[w];
    while (word != 0) {
      const uint32_t bit = static_cast<uint32_t>(std::countr_zero(word));
      const uint64_t pos = (static_cast<uint64_t>(w) << 6) | bit;
      if (pos >= num_values) break;
      out->push_back(static_cast<uint32_t>(pos));
      word &= word - 1;
    }
  }
  return out->size();
}

uint64_t SelectBitmap(std::span<const int64_t> values, int64_t lo, int64_t hi,
                      std::vector<uint32_t>* out) {
  std::vector<uint64_t> bitmap;
  return SelectBitmap(values, lo, hi, out, &bitmap);
}

uint64_t SelectBitmap(std::span<const int64_t> values, int64_t lo, int64_t hi,
                      std::vector<uint32_t>* out,
                      std::vector<uint64_t>* scratch) {
  BuildSelectionBitmap(values, lo, hi, scratch);
  return BitmapToPositions(*scratch, values.size(), out);
}

uint64_t CountInRange(std::span<const int64_t> values, int64_t lo,
                      int64_t hi) {
  return simd::CountInRange(simd::ActiveBackend(), values.data(),
                            values.size(), lo, hi);
}

void BitmapAnd(std::vector<uint64_t>* a, const std::vector<uint64_t>& b) {
  HWSTAR_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] &= b[i];
}

}  // namespace hwstar::ops
