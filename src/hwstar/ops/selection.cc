#include "hwstar/ops/selection.h"

#include <bit>

#include "hwstar/common/macros.h"

namespace hwstar::ops {

uint64_t SelectBranching(std::span<const int64_t> values, int64_t lo,
                         int64_t hi, std::vector<uint32_t>* out) {
  out->clear();
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= lo && values[i] < hi) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
  return out->size();
}

uint64_t SelectBranchFree(std::span<const int64_t> values, int64_t lo,
                          int64_t hi, std::vector<uint32_t>* out) {
  out->resize(values.size());
  uint32_t* dst = out->data();
  uint64_t k = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    dst[k] = static_cast<uint32_t>(i);
    k += static_cast<uint64_t>(values[i] >= lo) &
         static_cast<uint64_t>(values[i] < hi);
  }
  out->resize(k);
  return k;
}

void BuildSelectionBitmap(std::span<const int64_t> values, int64_t lo,
                          int64_t hi, std::vector<uint64_t>* bitmap) {
  const size_t n = values.size();
  bitmap->assign((n + 63) / 64, 0);
  uint64_t* words = bitmap->data();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bit = static_cast<uint64_t>(values[i] >= lo) &
                         static_cast<uint64_t>(values[i] < hi);
    words[i >> 6] |= bit << (i & 63);
  }
}

uint64_t BitmapToPositions(const std::vector<uint64_t>& bitmap,
                           uint64_t num_values, std::vector<uint32_t>* out) {
  out->clear();
  for (size_t w = 0; w < bitmap.size(); ++w) {
    uint64_t word = bitmap[w];
    while (word != 0) {
      const uint32_t bit = static_cast<uint32_t>(std::countr_zero(word));
      const uint64_t pos = (static_cast<uint64_t>(w) << 6) | bit;
      if (pos >= num_values) break;
      out->push_back(static_cast<uint32_t>(pos));
      word &= word - 1;
    }
  }
  return out->size();
}

uint64_t SelectBitmap(std::span<const int64_t> values, int64_t lo, int64_t hi,
                      std::vector<uint32_t>* out) {
  std::vector<uint64_t> bitmap;
  BuildSelectionBitmap(values, lo, hi, &bitmap);
  return BitmapToPositions(bitmap, values.size(), out);
}

uint64_t CountInRange(std::span<const int64_t> values, int64_t lo,
                      int64_t hi) {
  uint64_t count = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    count += static_cast<uint64_t>(values[i] >= lo) &
             static_cast<uint64_t>(values[i] < hi);
  }
  return count;
}

void BitmapAnd(std::vector<uint64_t>* a, const std::vector<uint64_t>& b) {
  HWSTAR_CHECK(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] &= b[i];
}

}  // namespace hwstar::ops
