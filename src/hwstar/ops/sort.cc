#include "hwstar/ops/sort.h"

#include <algorithm>
#include <array>

namespace hwstar::ops {

namespace {

/// One counting pass of 8-bit LSB radix sort from src into dst.
template <typename CopyFn>
void RadixPass(size_t n, uint32_t shift,
               const uint64_t* keys_src, CopyFn copy) {
  std::array<uint64_t, 256> count{};
  for (size_t i = 0; i < n; ++i) {
    ++count[(keys_src[i] >> shift) & 0xFF];
  }
  std::array<uint64_t, 256> offset{};
  uint64_t acc = 0;
  for (size_t b = 0; b < 256; ++b) {
    offset[b] = acc;
    acc += count[b];
  }
  for (size_t i = 0; i < n; ++i) {
    copy(i, offset[(keys_src[i] >> shift) & 0xFF]++);
  }
}

}  // namespace

void RadixSortU64(std::vector<uint64_t>* values) {
  const size_t n = values->size();
  if (n <= 1) return;
  std::vector<uint64_t> tmp(n);
  uint64_t* src = values->data();
  uint64_t* dst = tmp.data();
  for (uint32_t pass = 0; pass < 8; ++pass) {
    const uint32_t shift = pass * 8;
    RadixPass(n, shift, src, [&](size_t i, uint64_t o) { dst[o] = src[i]; });
    std::swap(src, dst);
  }
  // 8 passes = even number of swaps, so the result is back in *values.
}

void RadixSortU64Adaptive(std::vector<uint64_t>* values) {
  const size_t n = values->size();
  if (n <= 1) return;
  // Determine which byte positions actually vary.
  uint64_t all_or = 0, all_and = ~uint64_t{0};
  for (uint64_t v : *values) {
    all_or |= v;
    all_and &= v;
  }
  const uint64_t varying = all_or & ~all_and;
  std::vector<uint64_t> tmp(n);
  uint64_t* src = values->data();
  uint64_t* dst = tmp.data();
  for (uint32_t pass = 0; pass < 8; ++pass) {
    const uint32_t shift = pass * 8;
    if (((varying >> shift) & 0xFF) == 0) continue;  // constant byte
    RadixPass(n, shift, src, [&](size_t i, uint64_t o) { dst[o] = src[i]; });
    std::swap(src, dst);
  }
  if (src != values->data()) {
    std::copy(src, src + n, values->data());
  }
}

void RadixSortRelation(Relation* rel) {
  const size_t n = rel->keys.size();
  if (n <= 1) return;
  Relation tmp;
  tmp.keys.resize(n);
  tmp.payloads.resize(n);
  Relation* src = rel;
  Relation* dst = &tmp;
  for (uint32_t pass = 0; pass < 8; ++pass) {
    const uint32_t shift = pass * 8;
    RadixPass(n, shift, src->keys.data(), [&](size_t i, uint64_t o) {
      dst->keys[o] = src->keys[i];
      dst->payloads[o] = src->payloads[i];
    });
    std::swap(src, dst);
  }
}

void MergeSortU64(std::vector<uint64_t>* values, size_t run_size) {
  const size_t n = values->size();
  if (n <= 1) return;
  if (run_size < 2) run_size = 2;

  // Phase 1: insertion-sort L1-resident runs.
  for (size_t begin = 0; begin < n; begin += run_size) {
    const size_t end = std::min(begin + run_size, n);
    for (size_t i = begin + 1; i < end; ++i) {
      uint64_t v = (*values)[i];
      size_t j = i;
      while (j > begin && (*values)[j - 1] > v) {
        (*values)[j] = (*values)[j - 1];
        --j;
      }
      (*values)[j] = v;
    }
  }

  // Phase 2: iterative bottom-up merge.
  std::vector<uint64_t> tmp(n);
  uint64_t* src = values->data();
  uint64_t* dst = tmp.data();
  for (size_t width = run_size; width < n; width *= 2) {
    for (size_t begin = 0; begin < n; begin += 2 * width) {
      const size_t mid = std::min(begin + width, n);
      const size_t end = std::min(begin + 2 * width, n);
      size_t a = begin, b = mid, o = begin;
      while (a < mid && b < end) {
        dst[o++] = src[a] <= src[b] ? src[a++] : src[b++];
      }
      while (a < mid) dst[o++] = src[a++];
      while (b < end) dst[o++] = src[b++];
    }
    std::swap(src, dst);
  }
  if (src != values->data()) {
    std::copy(src, src + n, values->data());
  }
}

bool IsSortedU64(const std::vector<uint64_t>& values) {
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i - 1] > values[i]) return false;
  }
  return true;
}

}  // namespace hwstar::ops
