#ifndef HWSTAR_OPS_HOT_COLD_H_
#define HWSTAR_OPS_HOT_COLD_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace hwstar::ops {

/// Exponential-smoothing access-frequency estimator (Levandoski et al.,
/// "Identifying hot and cold data in main-memory databases", the same
/// ICDE 2013 proceedings as the keynote): instead of maintaining an
/// in-line LRU chain on every access, record (a sample of) the access log
/// and estimate per-record frequencies offline as
///   est = sum over accesses of alpha * (1-alpha)^(now - t).
/// The estimator then nominates the top-K records as the hot set for
/// memory residency; everything else can live on flash.
class ExponentialSmoothingEstimator {
 public:
  /// `alpha` is the smoothing constant in (0, 1); the estimator's memory
  /// half-life is ~0.69/alpha logical time units, so pick alpha around
  /// 1/window for a window of interest (e.g., 1e-5 for a 100K-access
  /// window). `sample_rate_permille` keeps only ~N/1000 of accesses
  /// (deterministic log sampling).
  explicit ExponentialSmoothingEstimator(double alpha = 1e-4,
                                         uint32_t sample_rate_permille = 1000);

  /// Records one access of `key` at logical time `now` (monotone).
  void Record(uint64_t key, uint64_t now);

  /// Estimated frequency of a key at time `now` (0 for never-seen keys).
  double Estimate(uint64_t key, uint64_t now) const;

  /// The K keys with the highest estimates at time `now`, hottest first.
  std::vector<uint64_t> TopK(uint64_t k, uint64_t now) const;

  size_t tracked_keys() const { return state_.size(); }

 private:
  struct KeyState {
    double estimate = 0;     // decayed to last_time
    uint64_t last_time = 0;
  };

  double Decayed(const KeyState& s, uint64_t now) const;

  double alpha_;
  double one_minus_alpha_;
  uint32_t sample_rate_permille_;
  uint64_t counter_ = 0;  // for deterministic sampling
  std::unordered_map<uint64_t, KeyState> state_;
};

/// Plain LRU cache of keys (the oblivious baseline the estimator is
/// compared against in E13): tracks which keys would be memory-resident
/// under least-recently-used replacement with `capacity` slots.
class LruTracker {
 public:
  explicit LruTracker(uint64_t capacity);

  /// Touches a key; returns true if it was resident (hit).
  bool Access(uint64_t key);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double hit_rate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }
  void ResetStats() { hits_ = misses_ = 0; }

 private:
  uint64_t capacity_;
  std::list<uint64_t> order_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Hit rate of a *fixed* hot set over an access trace: the metric that
/// compares classifier quality independent of replacement mechanics.
double FixedSetHitRate(const std::vector<uint64_t>& hot_set,
                       const std::vector<uint64_t>& trace);

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_HOT_COLD_H_
