#include "hwstar/ops/merge.h"

#include "hwstar/common/bits.h"
#include "hwstar/common/macros.h"

namespace hwstar::ops {

LoserTreeMerger::LoserTreeMerger(std::vector<std::span<const uint64_t>> runs)
    : runs_(std::move(runs)) {
  k_ = static_cast<uint32_t>(
      bits::NextPowerOfTwo(runs_.size() < 2 ? 2 : runs_.size()));
  cursor_.assign(runs_.size(), 0);
  for (const auto& r : runs_) remaining_ += r.size();

  // Initialize: run the full tournament once. tree_ holds, for each
  // internal node, the *loser* leaf index of the match played there;
  // tree_[0] holds the overall winner.
  tree_.assign(k_, 0);
  // Compute winners bottom-up over a temporary bracket.
  std::vector<uint32_t> winners(2 * k_);
  for (uint32_t leaf = 0; leaf < k_; ++leaf) winners[k_ + leaf] = leaf;
  for (uint32_t node = k_ - 1; node >= 1; --node) {
    const uint32_t a = winners[2 * node];
    const uint32_t b = winners[2 * node + 1];
    const bool a_wins = HeadOf(a) <= HeadOf(b);
    winners[node] = a_wins ? a : b;
    tree_[node] = a_wins ? b : a;  // store the loser
  }
  tree_[0] = winners[1];
}

uint64_t LoserTreeMerger::HeadOf(uint32_t r) const {
  if (r >= runs_.size() || cursor_[r] >= runs_[r].size()) return kSentinel;
  return runs_[r][cursor_[r]];
}

void LoserTreeMerger::Replay(uint32_t r) {
  // Walk from leaf r to the root, playing matches against stored losers.
  uint32_t winner = r;
  for (uint32_t node = (k_ + r) / 2; node >= 1; node /= 2) {
    const uint32_t opponent = tree_[node];
    if (HeadOf(opponent) < HeadOf(winner)) {
      tree_[node] = winner;
      winner = opponent;
    }
  }
  tree_[0] = winner;
}

uint64_t LoserTreeMerger::Next() {
  HWSTAR_DCHECK(HasNext());
  const uint32_t w = tree_[0];
  const uint64_t value = HeadOf(w);
  HWSTAR_DCHECK(value != kSentinel);
  ++cursor_[w];
  --remaining_;
  Replay(w);
  return value;
}

std::vector<uint64_t> MergeSortedRuns(
    const std::vector<std::vector<uint64_t>>& runs) {
  std::vector<std::span<const uint64_t>> spans;
  spans.reserve(runs.size());
  for (const auto& r : runs) spans.emplace_back(r.data(), r.size());
  LoserTreeMerger merger(std::move(spans));
  std::vector<uint64_t> out;
  out.reserve(merger.remaining());
  while (merger.HasNext()) out.push_back(merger.Next());
  return out;
}

std::vector<uint64_t> MergeSortedRunsLinear(
    const std::vector<std::vector<uint64_t>>& runs) {
  std::vector<uint64_t> cursor(runs.size(), 0);
  uint64_t total = 0;
  for (const auto& r : runs) total += r.size();
  std::vector<uint64_t> out;
  out.reserve(total);
  for (uint64_t produced = 0; produced < total; ++produced) {
    bool found = false;
    uint64_t best = 0;
    size_t best_run = 0;
    for (size_t r = 0; r < runs.size(); ++r) {
      if (cursor[r] < runs[r].size() &&
          (!found || runs[r][cursor[r]] < best)) {
        found = true;
        best = runs[r][cursor[r]];
        best_run = r;
      }
    }
    HWSTAR_DCHECK(found);
    ++cursor[best_run];
    out.push_back(best);
  }
  return out;
}

}  // namespace hwstar::ops
