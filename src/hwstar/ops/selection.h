#ifndef HWSTAR_OPS_SELECTION_H_
#define HWSTAR_OPS_SELECTION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace hwstar::ops {

/// Selection kernels: produce the indices of values in [lo, hi). Three
/// implementations of identical semantics whose relative performance is
/// pure microarchitecture -- the E6 experiment. At ~50% selectivity the
/// branching kernel suffers maximal branch mispredictions; the branch-free
/// kernel runs at constant throughput; the bitmap kernel trades a second
/// pass for a compact intermediate that composes with other predicates.

/// Textbook `if (pred) out.push_back(i)` loop. Fast at extreme
/// selectivities (the predictor is nearly always right), collapses in the
/// middle.
uint64_t SelectBranching(std::span<const int64_t> values, int64_t lo,
                         int64_t hi, std::vector<uint32_t>* out);

/// Predicated/branch-free selection: unconditionally writes the index and
/// advances the cursor by the predicate's truth value. Data-independent
/// control flow, constant throughput.
uint64_t SelectBranchFree(std::span<const int64_t> values, int64_t lo,
                          int64_t hi, std::vector<uint32_t>* out);

/// Two-phase: build a bitmap of qualifying positions (explicitly
/// data-parallel -- vector compare + movemask on the active hwstar::simd
/// backend), then extract positions from the bitmap. This overload
/// heap-allocates a fresh bitmap per call; hot loops use the scratch
/// overload below.
uint64_t SelectBitmap(std::span<const int64_t> values, int64_t lo, int64_t hi,
                      std::vector<uint32_t>* out);

/// Same kernel with a caller-provided scratch bitmap, so a per-batch
/// filter chain (the vectorized engine) reuses one allocation across
/// every batch instead of paying malloc/free per call. `scratch` is
/// resized and overwritten; its contents afterwards are the selection
/// bitmap (usable for further BitmapAnd composition).
uint64_t SelectBitmap(std::span<const int64_t> values, int64_t lo, int64_t hi,
                      std::vector<uint32_t>* out,
                      std::vector<uint64_t>* scratch);

/// Produces only the bitmap (64 values per word, LSB = lowest index).
/// SIMD: 64 predicate bits per word are produced by 16 AVX2 (or 32
/// SSE4.2) compare+movemask steps, bit-identical to the scalar loop.
void BuildSelectionBitmap(std::span<const int64_t> values, int64_t lo,
                          int64_t hi, std::vector<uint64_t>* bitmap);

/// Expands a bitmap into positions; returns the count.
uint64_t BitmapToPositions(const std::vector<uint64_t>& bitmap,
                           uint64_t num_values, std::vector<uint32_t>* out);

/// Counts qualifying values without materializing positions (branch-free).
uint64_t CountInRange(std::span<const int64_t> values, int64_t lo, int64_t hi);

/// AND-combines two bitmaps in place (a &= b); sizes must match.
void BitmapAnd(std::vector<uint64_t>* a, const std::vector<uint64_t>& b);

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_SELECTION_H_
