#ifndef HWSTAR_OPS_RELATION_H_
#define HWSTAR_OPS_RELATION_H_

#include <cstdint>
#include <vector>

namespace hwstar::ops {

/// The canonical join-benchmark relation: narrow <key, payload> tuples, as
/// used throughout the main-memory join literature the paper's argument
/// builds on. Payloads typically carry a row id so joins can be verified.
struct Relation {
  std::vector<uint64_t> keys;
  std::vector<uint64_t> payloads;

  uint64_t size() const { return keys.size(); }
  uint64_t bytes() const {
    return (keys.size() + payloads.size()) * sizeof(uint64_t);
  }
  void Reserve(uint64_t n) {
    keys.reserve(n);
    payloads.reserve(n);
  }
  void Append(uint64_t key, uint64_t payload) {
    keys.push_back(key);
    payloads.push_back(payload);
  }
};

/// One materialized join match: the payloads of the joined build/probe
/// tuples.
struct JoinPair {
  uint64_t build_payload;
  uint64_t probe_payload;
};

/// Output of a join. `matches` is always filled; `pairs` only when the
/// join ran in materializing mode.
struct JoinResult {
  uint64_t matches = 0;
  std::vector<JoinPair> pairs;
};

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_RELATION_H_
