#include "hwstar/ops/join_sort_merge.h"

#include "hwstar/ops/sort.h"

namespace hwstar::ops {

JoinResult SortMergeJoin(const Relation& build, const Relation& probe,
                         const SortMergeJoinOptions& options) {
  Relation r = build;
  Relation s = probe;
  if (!options.inputs_sorted) {
    RadixSortRelation(&r);
    RadixSortRelation(&s);
  }

  JoinResult result;
  const uint64_t nr = r.size(), ns = s.size();
  uint64_t i = 0, j = 0;
  while (i < nr && j < ns) {
    const uint64_t rk = r.keys[i], sk = s.keys[j];
    if (rk < sk) {
      ++i;
    } else if (rk > sk) {
      ++j;
    } else {
      // Key groups on both sides: emit the cross product.
      uint64_t i_end = i;
      while (i_end < nr && r.keys[i_end] == rk) ++i_end;
      uint64_t j_end = j;
      while (j_end < ns && s.keys[j_end] == rk) ++j_end;
      const uint64_t group = (i_end - i) * (j_end - j);
      result.matches += group;
      if (options.materialize) {
        for (uint64_t a = i; a < i_end; ++a) {
          for (uint64_t b = j; b < j_end; ++b) {
            result.pairs.push_back(JoinPair{r.payloads[a], s.payloads[b]});
          }
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return result;
}

}  // namespace hwstar::ops
