#include "hwstar/ops/btree.h"

#include <algorithm>

#include "hwstar/common/macros.h"
#include "hwstar/ops/probe_kernels.h"

namespace hwstar::ops {

/// Node layout: keys and children/values in separate arrays so key search
/// scans one dense key region. Leaves are chained for range scans.
struct BPlusTree::Node {
  bool leaf = true;
  uint32_t count = 0;               // keys in use
  std::vector<uint64_t> keys;       // capacity = fanout
  std::vector<uint64_t> values;     // leaf: capacity = fanout
  std::vector<Node*> children;      // inner: capacity = fanout + 1
  Node* next = nullptr;             // leaf chain
};

struct BPlusTree::SplitResult {
  bool split = false;
  uint64_t sep_key = 0;  // smallest key of the right node
  Node* right = nullptr;
};

BPlusTree::BPlusTree(uint32_t fanout) : fanout_(fanout) {
  HWSTAR_CHECK(fanout_ >= 4);
  root_ = NewLeaf();
}

BPlusTree::~BPlusTree() { FreeTree(root_); }

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : fanout_(other.fanout_),
      root_(other.root_),
      size_(other.size_),
      node_count_(other.node_count_) {
  other.root_ = nullptr;
  other.size_ = 0;
  other.node_count_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
  if (this != &other) {
    FreeTree(root_);
    fanout_ = other.fanout_;
    root_ = other.root_;
    size_ = other.size_;
    node_count_ = other.node_count_;
    other.root_ = nullptr;
    other.size_ = 0;
    other.node_count_ = 0;
  }
  return *this;
}

BPlusTree::Node* BPlusTree::NewLeaf() {
  Node* n = new Node();
  n->leaf = true;
  n->keys.reserve(fanout_);
  n->values.reserve(fanout_);
  ++node_count_;
  return n;
}

BPlusTree::Node* BPlusTree::NewInner() {
  Node* n = new Node();
  n->leaf = false;
  n->keys.reserve(fanout_);
  n->children.reserve(fanout_ + 1);
  ++node_count_;
  return n;
}

void BPlusTree::FreeTree(Node* n) {
  if (n == nullptr) return;
  if (!n->leaf) {
    for (Node* c : n->children) FreeTree(c);
  }
  delete n;
}

namespace {

/// Index of the first key > `key` (inner-node child selection).
uint32_t UpperBoundIdx(const std::vector<uint64_t>& keys, uint64_t key) {
  return static_cast<uint32_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}

/// Index of the first key >= `key`.
uint32_t LowerBoundIdx(const std::vector<uint64_t>& keys, uint64_t key) {
  return static_cast<uint32_t>(
      std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
}

}  // namespace

BPlusTree::SplitResult BPlusTree::InsertRec(Node* n, uint64_t key,
                                            uint64_t value) {
  if (n->leaf) {
    uint32_t pos = LowerBoundIdx(n->keys, key);
    if (pos < n->count && n->keys[pos] == key) {
      n->values[pos] = value;  // overwrite
      return SplitResult{};
    }
    n->keys.insert(n->keys.begin() + pos, key);
    n->values.insert(n->values.begin() + pos, value);
    ++n->count;
    ++size_;
    if (n->count <= fanout_) return SplitResult{};

    // Split the leaf in half; right node is chained after the left.
    Node* right = NewLeaf();
    const uint32_t half = n->count / 2;
    right->keys.assign(n->keys.begin() + half, n->keys.end());
    right->values.assign(n->values.begin() + half, n->values.end());
    right->count = n->count - half;
    n->keys.resize(half);
    n->values.resize(half);
    n->count = half;
    right->next = n->next;
    n->next = right;
    return SplitResult{true, right->keys[0], right};
  }

  const uint32_t child_idx = UpperBoundIdx(n->keys, key);
  SplitResult child_split = InsertRec(n->children[child_idx], key, value);
  if (!child_split.split) return SplitResult{};

  n->keys.insert(n->keys.begin() + child_idx, child_split.sep_key);
  n->children.insert(n->children.begin() + child_idx + 1, child_split.right);
  ++n->count;
  if (n->count <= fanout_) return SplitResult{};

  // Split the inner node; the middle key moves up.
  Node* right = NewInner();
  const uint32_t mid = n->count / 2;
  const uint64_t up_key = n->keys[mid];
  right->keys.assign(n->keys.begin() + mid + 1, n->keys.end());
  right->children.assign(n->children.begin() + mid + 1, n->children.end());
  right->count = n->count - mid - 1;
  n->keys.resize(mid);
  n->children.resize(mid + 1);
  n->count = mid;
  return SplitResult{true, up_key, right};
}

void BPlusTree::Insert(uint64_t key, uint64_t value) {
  SplitResult split = InsertRec(root_, key, value);
  if (split.split) {
    Node* new_root = NewInner();
    new_root->keys.push_back(split.sep_key);
    new_root->children.push_back(root_);
    new_root->children.push_back(split.right);
    new_root->count = 1;
    root_ = new_root;
  }
}

const BPlusTree::Node* BPlusTree::FindLeaf(uint64_t key) const {
  const Node* n = root_;
  while (!n->leaf) {
    n = n->children[UpperBoundIdx(n->keys, key)];
  }
  return n;
}

bool BPlusTree::Find(uint64_t key, uint64_t* value) const {
  const Node* leaf = FindLeaf(key);
  uint32_t pos = LowerBoundIdx(leaf->keys, key);
  if (pos < leaf->count && leaf->keys[pos] == key) {
    *value = leaf->values[pos];
    return true;
  }
  return false;
}

size_t BPlusTree::FindBatch(const uint64_t* keys, size_t n, uint64_t* values,
                            bool* found, uint32_t group_size) const {
  size_t hits = 0;
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t G = decltype(g)::value;
    for (size_t base = 0; base < n; base += G) {
      const uint32_t m =
          static_cast<uint32_t>(n - base < G ? n - base : G);
      if (m < G) {
        for (uint32_t j = 0; j < m; ++j) {
          uint64_t value = 0;
          const bool hit = Find(keys[base + j], &value);
          values[base + j] = hit ? value : 0;
          if (found != nullptr) found[base + j] = hit;
          hits += hit;
        }
        break;
      }
      // Level-synchronous descent. Every leaf sits at the same depth, so
      // one loop condition covers the whole group. Sweep 1 selects each
      // lane's child and prefetches the Node object; sweep 2 (by which
      // time those lines are in flight) reads each child's key-array
      // pointer and prefetches the keys themselves -- the two dependent
      // loads of the next level, both overlapped group-wide.
      const Node* cur[G];
      for (uint32_t j = 0; j < m; ++j) cur[j] = root_;
      while (!cur[0]->leaf) {
        const Node* next[G];
        for (uint32_t j = 0; j < m; ++j) {
          const Node* node = cur[j];
          next[j] = node->children[UpperBoundIdx(node->keys, keys[base + j])];
          HWSTAR_PREFETCH(next[j]);
        }
        for (uint32_t j = 0; j < m; ++j) {
          HWSTAR_PREFETCH(next[j]->keys.data());
          cur[j] = next[j];
        }
      }
      for (uint32_t j = 0; j < m; ++j) {
        const Node* leaf = cur[j];
        const uint32_t pos = LowerBoundIdx(leaf->keys, keys[base + j]);
        const bool hit = pos < leaf->count && leaf->keys[pos] == keys[base + j];
        values[base + j] = hit ? leaf->values[pos] : 0;
        if (found != nullptr) found[base + j] = hit;
        hits += hit;
      }
    }
  });
  return hits;
}

bool BPlusTree::Erase(uint64_t key) {
  // Mutable descent (FindLeaf is const-only).
  Node* n = root_;
  while (!n->leaf) {
    n = n->children[UpperBoundIdx(n->keys, key)];
  }
  const uint32_t pos = LowerBoundIdx(n->keys, key);
  if (pos >= n->count || n->keys[pos] != key) return false;
  n->keys.erase(n->keys.begin() + pos);
  n->values.erase(n->values.begin() + pos);
  --n->count;
  --size_;
  return true;
}

uint64_t BPlusTree::RangeScan(uint64_t lo, uint64_t hi,
                              std::vector<uint64_t>* out) const {
  uint64_t count = 0;
  const Node* leaf = FindLeaf(lo);
  uint32_t pos = LowerBoundIdx(leaf->keys, lo);
  while (leaf != nullptr) {
    for (; pos < leaf->count; ++pos) {
      if (leaf->keys[pos] > hi) return count;
      out->push_back(leaf->values[pos]);
      ++count;
    }
    leaf = leaf->next;
    pos = 0;
  }
  return count;
}

uint64_t BPlusTree::RangeScanEntries(
    uint64_t lo, uint64_t hi,
    std::vector<std::pair<uint64_t, uint64_t>>* out) const {
  uint64_t count = 0;
  const Node* leaf = FindLeaf(lo);
  uint32_t pos = LowerBoundIdx(leaf->keys, lo);
  while (leaf != nullptr) {
    for (; pos < leaf->count; ++pos) {
      if (leaf->keys[pos] > hi) return count;
      out->emplace_back(leaf->keys[pos], leaf->values[pos]);
      ++count;
    }
    leaf = leaf->next;
    pos = 0;
  }
  return count;
}

Result<BPlusTree> BPlusTree::BulkLoad(const std::vector<uint64_t>& keys,
                                      const std::vector<uint64_t>& values,
                                      uint32_t fanout) {
  if (keys.size() != values.size()) {
    return Status::InvalidArgument("keys/values size mismatch");
  }
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] >= keys[i]) {
      return Status::InvalidArgument("keys must be strictly increasing");
    }
  }
  BPlusTree tree(fanout);
  // Build the leaf level packed full.
  std::vector<Node*> level;
  std::vector<uint64_t> seps;  // smallest key of each node except the first
  size_t i = 0;
  Node* prev = nullptr;
  while (i < keys.size()) {
    Node* leaf = tree.NewLeaf();
    size_t take = std::min<size_t>(fanout, keys.size() - i);
    leaf->keys.assign(keys.begin() + i, keys.begin() + i + take);
    leaf->values.assign(values.begin() + i, values.begin() + i + take);
    leaf->count = static_cast<uint32_t>(take);
    if (prev != nullptr) prev->next = leaf;
    if (!level.empty()) seps.push_back(leaf->keys[0]);
    level.push_back(leaf);
    prev = leaf;
    i += take;
  }
  if (level.empty()) {
    return tree;  // keeps the default empty-leaf root
  }
  tree.FreeTree(tree.root_);
  --tree.node_count_;
  tree.size_ = keys.size();

  // Build inner levels bottom-up.
  while (level.size() > 1) {
    std::vector<Node*> parents;
    std::vector<uint64_t> parent_seps;
    size_t c = 0;
    while (c < level.size()) {
      Node* inner = tree.NewInner();
      size_t take_children = std::min<size_t>(fanout + 1, level.size() - c);
      // Avoid leaving a lone child for the final parent.
      if (level.size() - c - take_children == 1) --take_children;
      for (size_t k = 0; k < take_children; ++k) {
        inner->children.push_back(level[c + k]);
        if (k > 0) inner->keys.push_back(seps[c + k - 1]);
      }
      inner->count = static_cast<uint32_t>(inner->keys.size());
      if (!parents.empty()) parent_seps.push_back(seps[c - 1]);
      parents.push_back(inner);
      c += take_children;
    }
    level = std::move(parents);
    seps = std::move(parent_seps);
  }
  tree.root_ = level[0];
  return tree;
}

uint32_t BPlusTree::height() const {
  uint32_t h = 1;
  const Node* n = root_;
  while (!n->leaf) {
    n = n->children[0];
    ++h;
  }
  return h;
}

uint64_t BPlusTree::MemoryBytes() const {
  // Approximation: per-node key/value/child storage at capacity.
  return node_count_ * (sizeof(Node) + fanout_ * 2 * sizeof(uint64_t) +
                        (fanout_ + 1) * sizeof(Node*));
}

}  // namespace hwstar::ops
