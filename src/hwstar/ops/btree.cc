#include "hwstar/ops/btree.h"

#include <algorithm>

#include "hwstar/common/macros.h"
#include "hwstar/ops/probe_kernels.h"
#include "hwstar/sync/optlock.h"

namespace hwstar::ops {

/// Node layout: keys and children/values in separate fixed arrays so key
/// search scans one dense region. Leaves are chained for range scans and
/// for the reader's move-right step. Every field a latch-free reader can
/// observe while the writer mutates it is a std::atomic read relaxed --
/// consistency comes from OptLock version validation, the atomics only
/// rule out torn words. Array capacities allow the transient one-over
/// overflow the insert path creates before splitting (fanout + 1 keys,
/// fanout + 2 children); entries beyond `count` are stale, never read by
/// a validated reader.
struct BPlusTree::Node {
  Node(bool is_leaf, uint32_t fanout)
      : leaf(is_leaf),
        keys(new std::atomic<uint64_t>[fanout + 1]),
        values(is_leaf ? new std::atomic<uint64_t>[fanout + 1] : nullptr),
        children(is_leaf ? nullptr : new std::atomic<Node*>[fanout + 2]) {}

  sync::OptLock lock;
  const bool leaf;
  std::atomic<uint32_t> count{0};  // keys in use
  const std::unique_ptr<std::atomic<uint64_t>[]> keys;
  const std::unique_ptr<std::atomic<uint64_t>[]> values;  // leaf only
  const std::unique_ptr<std::atomic<Node*>[]> children;   // inner only
  std::atomic<Node*> next{nullptr};                       // leaf chain
};

struct BPlusTree::SplitResult {
  bool split = false;
  uint64_t sep_key = 0;  // smallest key of the right node
  Node* right = nullptr;
};

BPlusTree::BPlusTree(uint32_t fanout) : fanout_(fanout) {
  HWSTAR_CHECK(fanout_ >= 4);
  root_.store(NewLeaf(), std::memory_order_relaxed);
}

BPlusTree::~BPlusTree() { FreeTree(root_.load(std::memory_order_relaxed)); }

BPlusTree::BPlusTree(BPlusTree&& other) noexcept
    : fanout_(other.fanout_),
      root_(other.root_.load(std::memory_order_relaxed)),
      size_(other.size_),
      node_count_(other.node_count_) {
  other.root_.store(nullptr, std::memory_order_relaxed);
  other.size_ = 0;
  other.node_count_ = 0;
}

BPlusTree& BPlusTree::operator=(BPlusTree&& other) noexcept {
  if (this != &other) {
    FreeTree(root_.load(std::memory_order_relaxed));
    fanout_ = other.fanout_;
    root_.store(other.root_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    size_ = other.size_;
    node_count_ = other.node_count_;
    other.root_.store(nullptr, std::memory_order_relaxed);
    other.size_ = 0;
    other.node_count_ = 0;
  }
  return *this;
}

BPlusTree::Node* BPlusTree::NewLeaf() {
  ++node_count_;
  return new Node(/*is_leaf=*/true, fanout_);
}

BPlusTree::Node* BPlusTree::NewInner() {
  ++node_count_;
  return new Node(/*is_leaf=*/false, fanout_);
}

void BPlusTree::FreeTree(Node* n) {
  if (n == nullptr) return;
  if (!n->leaf) {
    const uint32_t cnt = n->count.load(std::memory_order_relaxed);
    for (uint32_t i = 0; i <= cnt; ++i) {
      FreeTree(n->children[i].load(std::memory_order_relaxed));
    }
  }
  delete n;
}

namespace {

/// Index of the first key > `key` (inner-node child selection). Relaxed
/// loads: reader-safe (bounded by `count`), validated by the caller.
uint32_t UpperBoundIdx(const std::atomic<uint64_t>* keys, uint32_t count,
                       uint64_t key) {
  uint32_t lo = 0;
  uint32_t hi = count;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (keys[mid].load(std::memory_order_relaxed) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Index of the first key >= `key`.
uint32_t LowerBoundIdx(const std::atomic<uint64_t>* keys, uint32_t count,
                       uint64_t key) {
  uint32_t lo = 0;
  uint32_t hi = count;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (keys[mid].load(std::memory_order_relaxed) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

/// Writer-side mutations lock exactly the node being changed; the split
/// builds the right sibling privately and publishes it through the leaf
/// chain (next pointer, release) and the parent separator insert one
/// unwind level later. Between those two instants a reader routed by the
/// stale parent lands on the shrunken left node and follows `next` -- the
/// move-right step in the read path.
BPlusTree::SplitResult BPlusTree::InsertRec(Node* n, uint64_t key,
                                            uint64_t value) {
  if (n->leaf) {
    const uint32_t cnt = n->count.load(std::memory_order_relaxed);
    const uint32_t pos = LowerBoundIdx(n->keys.get(), cnt, key);
    if (pos < cnt && n->keys[pos].load(std::memory_order_relaxed) == key) {
      // Overwrite: one atomic store, readers see the old or new value
      // untorn -- no version bump needed.
      n->values[pos].store(value, std::memory_order_relaxed);
      return SplitResult{};
    }
    n->lock.WriteLock();
    for (uint32_t i = cnt; i > pos; --i) {
      n->keys[i].store(n->keys[i - 1].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      n->values[i].store(n->values[i - 1].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
    n->keys[pos].store(key, std::memory_order_relaxed);
    n->values[pos].store(value, std::memory_order_relaxed);
    const uint32_t total = cnt + 1;
    n->count.store(total, std::memory_order_relaxed);
    ++size_;
    if (total <= fanout_) {
      n->lock.WriteUnlock();
      return SplitResult{};
    }

    // Split the leaf in half; right node is chained after the left. Both
    // the key move and the count shrink happen under the lock, so readers
    // observe either the pre-split or the post-split leaf, never between.
    Node* right = NewLeaf();
    const uint32_t half = total / 2;
    for (uint32_t i = half; i < total; ++i) {
      right->keys[i - half].store(n->keys[i].load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
      right->values[i - half].store(
          n->values[i].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    right->count.store(total - half, std::memory_order_relaxed);
    right->next.store(n->next.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    n->count.store(half, std::memory_order_relaxed);
    n->next.store(right, std::memory_order_release);
    n->lock.WriteUnlock();
    return SplitResult{true, right->keys[0].load(std::memory_order_relaxed),
                       right};
  }

  const uint32_t cnt = n->count.load(std::memory_order_relaxed);
  const uint32_t child_idx = UpperBoundIdx(n->keys.get(), cnt, key);
  SplitResult child_split = InsertRec(
      n->children[child_idx].load(std::memory_order_relaxed), key, value);
  if (!child_split.split) return SplitResult{};

  n->lock.WriteLock();
  for (uint32_t i = cnt; i > child_idx; --i) {
    n->keys[i].store(n->keys[i - 1].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }
  for (uint32_t i = cnt + 1; i > child_idx + 1; --i) {
    n->children[i].store(n->children[i - 1].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  n->keys[child_idx].store(child_split.sep_key, std::memory_order_relaxed);
  n->children[child_idx + 1].store(child_split.right,
                                   std::memory_order_release);
  const uint32_t total = cnt + 1;
  n->count.store(total, std::memory_order_relaxed);
  if (total <= fanout_) {
    n->lock.WriteUnlock();
    return SplitResult{};
  }

  // Split the inner node; the middle key moves up. The entries beyond the
  // shrunken count go stale rather than being cleared: a reader that
  // validates the post-split node routes at most too far left, and the
  // leaf chain corrects it.
  Node* right = NewInner();
  const uint32_t mid = total / 2;
  const uint64_t up_key = n->keys[mid].load(std::memory_order_relaxed);
  for (uint32_t i = mid + 1; i < total; ++i) {
    right->keys[i - mid - 1].store(n->keys[i].load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
  }
  for (uint32_t i = mid + 1; i <= total; ++i) {
    right->children[i - mid - 1].store(
        n->children[i].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  right->count.store(total - mid - 1, std::memory_order_relaxed);
  n->count.store(mid, std::memory_order_relaxed);
  n->lock.WriteUnlock();
  return SplitResult{true, up_key, right};
}

void BPlusTree::Insert(uint64_t key, uint64_t value) {
  Node* root = root_.load(std::memory_order_relaxed);
  SplitResult split = InsertRec(root, key, value);
  if (split.split) {
    Node* new_root = NewInner();
    new_root->keys[0].store(split.sep_key, std::memory_order_relaxed);
    new_root->children[0].store(root, std::memory_order_relaxed);
    new_root->children[1].store(split.right, std::memory_order_relaxed);
    new_root->count.store(1, std::memory_order_relaxed);
    // Readers still holding the old root descend a tree that simply lacks
    // the newest separator; the leaf chain covers the difference.
    root_.store(new_root, std::memory_order_release);
  }
}

/// Writer-free descent (scans, census). Requires writer exclusion.
const BPlusTree::Node* BPlusTree::FindLeaf(uint64_t key) const {
  const Node* n = root_.load(std::memory_order_acquire);
  while (!n->leaf) {
    const uint32_t cnt = n->count.load(std::memory_order_relaxed);
    n = n->children[UpperBoundIdx(n->keys.get(), cnt, key)].load(
        std::memory_order_acquire);
  }
  return n;
}

bool BPlusTree::Find(uint64_t key, uint64_t* value) const {
  for (;;) {
    bool restart = false;
    const Node* n = root_.load(std::memory_order_acquire);
    uint64_t v = n->lock.ReadLockOrRestart(&restart);
    if (restart) continue;

    // Inner descent: version-coupled (validate the parent after reading
    // the child pointer, before dereferencing the child).
    while (!n->leaf && !restart) {
      const uint32_t cnt = n->count.load(std::memory_order_relaxed);
      const uint32_t idx = UpperBoundIdx(n->keys.get(), cnt, key);
      const Node* child = n->children[idx].load(std::memory_order_acquire);
      n->lock.CheckOrRestart(v, &restart);
      if (restart) break;
      const uint64_t cv = child->lock.ReadLockOrRestart(&restart);
      if (restart) break;
      n = child;
      v = cv;
    }
    if (restart) continue;

    // Leaf search with move-right: a key that split rightward after the
    // routing decision is reachable through the leaf chain. An empty
    // sibling (Erase never merges) is crossed blindly -- its range is
    // unknowable, and overshooting is impossible because every key right
    // of it is >= any key that could have lived there.
    bool hit = false;
    uint64_t val = 0;
    bool done = false;
    while (!done && !restart) {
      const uint32_t cnt = n->count.load(std::memory_order_relaxed);
      const uint32_t pos = LowerBoundIdx(n->keys.get(), cnt, key);
      if (pos < cnt && n->keys[pos].load(std::memory_order_relaxed) == key) {
        val = n->values[pos].load(std::memory_order_relaxed);
        n->lock.CheckOrRestart(v, &restart);
        if (!restart) {
          hit = true;
          done = true;
        }
        break;
      }
      if (pos == cnt) {
        const Node* next = n->next.load(std::memory_order_acquire);
        n->lock.CheckOrRestart(v, &restart);
        if (restart) break;
        if (next != nullptr) {
          const uint64_t nv = next->lock.ReadLockOrRestart(&restart);
          if (restart) break;
          const uint32_t ncnt = next->count.load(std::memory_order_relaxed);
          const uint64_t nfirst =
              ncnt != 0 ? next->keys[0].load(std::memory_order_relaxed) : 0;
          next->lock.CheckOrRestart(nv, &restart);
          if (restart) break;
          if (ncnt == 0 || nfirst <= key) {
            n = next;
            v = nv;
            continue;
          }
        }
      }
      n->lock.CheckOrRestart(v, &restart);
      if (!restart) done = true;  // validated miss
      break;
    }
    if (restart) continue;
    if (hit) *value = val;
    return hit;
  }
}

size_t BPlusTree::FindBatch(const uint64_t* keys, size_t n, uint64_t* values,
                            bool* found, uint32_t group_size) const {
  size_t hits = 0;
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t G = decltype(g)::value;
    for (size_t base = 0; base < n; base += G) {
      const uint32_t m = static_cast<uint32_t>(n - base < G ? n - base : G);
      if (m < G) {
        for (uint32_t j = 0; j < m; ++j) {
          uint64_t value = 0;
          const bool hit = Find(keys[base + j], &value);
          values[base + j] = hit ? value : 0;
          if (found != nullptr) found[base + j] = hit;
          hits += hit;
        }
        break;
      }
      // Level-synchronous descent. Every leaf sits at the same depth
      // below one root snapshot, so one loop condition covers the whole
      // group. Sweep 1 selects each lane's child, validates the parent
      // version, and prefetches the child Node object; sweep 2 (by which
      // time those lines are in flight) version-samples each child and
      // prefetches its key array -- the two dependent loads of the next
      // level, both overlapped group-wide.
      //
      // One restart loop wraps the whole group descent: any lane's
      // validation failure re-descends every lane from the root, keeping
      // the lanes level-synchronized (per-lane restarts would break the
      // lockstep the prefetch schedule depends on). Output slots are
      // rewritten on restart; hits commit only after a clean pass.
      for (;;) {
        bool restart = false;
        const Node* root = root_.load(std::memory_order_acquire);
        const uint64_t rv = root->lock.ReadLockOrRestart(&restart);
        if (restart) continue;
        const Node* cur[G];
        uint64_t ver[G];
        for (uint32_t j = 0; j < m; ++j) {
          cur[j] = root;
          ver[j] = rv;
        }
        while (!cur[0]->leaf && !restart) {
          const Node* next[G];
          for (uint32_t j = 0; j < m && !restart; ++j) {
            const Node* node = cur[j];
            const uint32_t cnt = node->count.load(std::memory_order_relaxed);
            next[j] = node->children[UpperBoundIdx(node->keys.get(), cnt,
                                                   keys[base + j])]
                          .load(std::memory_order_acquire);
            node->lock.CheckOrRestart(ver[j], &restart);
            HWSTAR_PREFETCH(next[j]);
          }
          for (uint32_t j = 0; j < m && !restart; ++j) {
            ver[j] = next[j]->lock.ReadLockOrRestart(&restart);
            HWSTAR_PREFETCH(next[j]->keys.get());
            cur[j] = next[j];
          }
        }
        size_t group_hits = 0;
        for (uint32_t j = 0; j < m && !restart; ++j) {
          // Per-lane leaf probe with the same move-right logic as the
          // scalar path (lanes may chase different chain lengths; the
          // group stays synchronized because this phase has no
          // cross-lane prefetch schedule left to protect).
          const Node* leaf = cur[j];
          uint64_t lv = ver[j];
          const uint64_t key = keys[base + j];
          bool done = false;
          while (!done && !restart) {
            const uint32_t cnt = leaf->count.load(std::memory_order_relaxed);
            const uint32_t pos = LowerBoundIdx(leaf->keys.get(), cnt, key);
            if (pos < cnt &&
                leaf->keys[pos].load(std::memory_order_relaxed) == key) {
              const uint64_t val =
                  leaf->values[pos].load(std::memory_order_relaxed);
              leaf->lock.CheckOrRestart(lv, &restart);
              if (restart) break;
              values[base + j] = val;
              if (found != nullptr) found[base + j] = true;
              ++group_hits;
              done = true;
              break;
            }
            if (pos == cnt) {
              const Node* next = leaf->next.load(std::memory_order_acquire);
              leaf->lock.CheckOrRestart(lv, &restart);
              if (restart) break;
              if (next != nullptr) {
                const uint64_t nv = next->lock.ReadLockOrRestart(&restart);
                if (restart) break;
                const uint32_t ncnt =
                    next->count.load(std::memory_order_relaxed);
                const uint64_t nfirst =
                    ncnt != 0 ? next->keys[0].load(std::memory_order_relaxed)
                              : 0;
                next->lock.CheckOrRestart(nv, &restart);
                if (restart) break;
                if (ncnt == 0 || nfirst <= key) {
                  leaf = next;
                  lv = nv;
                  continue;
                }
              }
            }
            leaf->lock.CheckOrRestart(lv, &restart);
            if (restart) break;
            values[base + j] = 0;
            if (found != nullptr) found[base + j] = false;
            done = true;
          }
        }
        if (!restart) {
          hits += group_hits;
          break;
        }
      }
    }
  });
  return hits;
}

bool BPlusTree::Erase(uint64_t key) {
  // Writer descent (relaxed loads: the writer is alone by contract).
  Node* n = root_.load(std::memory_order_relaxed);
  while (!n->leaf) {
    const uint32_t cnt = n->count.load(std::memory_order_relaxed);
    n = n->children[UpperBoundIdx(n->keys.get(), cnt, key)].load(
        std::memory_order_relaxed);
  }
  const uint32_t cnt = n->count.load(std::memory_order_relaxed);
  const uint32_t pos = LowerBoundIdx(n->keys.get(), cnt, key);
  if (pos >= cnt || n->keys[pos].load(std::memory_order_relaxed) != key) {
    return false;
  }
  n->lock.WriteLock();
  for (uint32_t i = pos; i + 1 < cnt; ++i) {
    n->keys[i].store(n->keys[i + 1].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    n->values[i].store(n->values[i + 1].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  n->count.store(cnt - 1, std::memory_order_relaxed);
  n->lock.WriteUnlock();
  --size_;
  return true;
}

uint64_t BPlusTree::RangeScan(uint64_t lo, uint64_t hi,
                              std::vector<uint64_t>* out) const {
  uint64_t count = 0;
  const Node* leaf = FindLeaf(lo);
  uint32_t pos =
      LowerBoundIdx(leaf->keys.get(),
                    leaf->count.load(std::memory_order_relaxed), lo);
  while (leaf != nullptr) {
    const uint32_t cnt = leaf->count.load(std::memory_order_relaxed);
    for (; pos < cnt; ++pos) {
      if (leaf->keys[pos].load(std::memory_order_relaxed) > hi) return count;
      out->push_back(leaf->values[pos].load(std::memory_order_relaxed));
      ++count;
    }
    leaf = leaf->next.load(std::memory_order_relaxed);
    pos = 0;
  }
  return count;
}

uint64_t BPlusTree::RangeScanEntries(
    uint64_t lo, uint64_t hi,
    std::vector<std::pair<uint64_t, uint64_t>>* out) const {
  uint64_t count = 0;
  const Node* leaf = FindLeaf(lo);
  uint32_t pos =
      LowerBoundIdx(leaf->keys.get(),
                    leaf->count.load(std::memory_order_relaxed), lo);
  while (leaf != nullptr) {
    const uint32_t cnt = leaf->count.load(std::memory_order_relaxed);
    for (; pos < cnt; ++pos) {
      const uint64_t k = leaf->keys[pos].load(std::memory_order_relaxed);
      if (k > hi) return count;
      out->emplace_back(k, leaf->values[pos].load(std::memory_order_relaxed));
      ++count;
    }
    leaf = leaf->next.load(std::memory_order_relaxed);
    pos = 0;
  }
  return count;
}

/// The latch-free scan core. Per leaf: sample the version, copy the
/// in-range entries and the next pointer, re-validate, THEN emit — a
/// validated copy is a snapshot of that leaf, and the next pointer read
/// inside the validated window is trustworthy even if the leaf splits
/// right afterwards (the copy already includes the keys that moved,
/// because splits only move keys rightward out of a LATER state of the
/// node). Any validation failure restarts the whole descent from just
/// past the last emitted key, so nothing is emitted twice and nothing in
/// range is skipped. Empty leaves (Erase never merges) are crossed like
/// in Find.
template <typename Emit>
uint64_t BPlusTree::ScanOptimisticImpl(uint64_t lo, uint64_t hi,
                                       Emit emit) const {
  uint64_t count = 0;
  uint64_t cursor = lo;
  std::vector<std::pair<uint64_t, uint64_t>> scratch;
  scratch.reserve(fanout_ + 1);
  for (;;) {
    bool restart = false;
    const Node* n = root_.load(std::memory_order_acquire);
    uint64_t v = n->lock.ReadLockOrRestart(&restart);
    if (restart) continue;
    while (!n->leaf && !restart) {
      const uint32_t cnt = n->count.load(std::memory_order_relaxed);
      const uint32_t idx = UpperBoundIdx(n->keys.get(), cnt, cursor);
      const Node* child = n->children[idx].load(std::memory_order_acquire);
      n->lock.CheckOrRestart(v, &restart);
      if (restart) break;
      const uint64_t cv = child->lock.ReadLockOrRestart(&restart);
      if (restart) break;
      n = child;
      v = cv;
    }
    if (restart) continue;

    while (!restart) {
      scratch.clear();
      const uint32_t cnt = n->count.load(std::memory_order_relaxed);
      bool past_hi = false;
      for (uint32_t pos = LowerBoundIdx(n->keys.get(), cnt, cursor);
           pos < cnt; ++pos) {
        const uint64_t k = n->keys[pos].load(std::memory_order_relaxed);
        if (k > hi) {
          past_hi = true;
          break;
        }
        scratch.emplace_back(k, n->values[pos].load(std::memory_order_relaxed));
      }
      const Node* next = n->next.load(std::memory_order_acquire);
      n->lock.CheckOrRestart(v, &restart);
      if (restart) break;  // scratch discarded; re-descend from cursor

      for (const auto& entry : scratch) emit(entry.first, entry.second);
      count += scratch.size();
      if (!scratch.empty()) {
        const uint64_t last = scratch.back().first;
        if (last >= hi) return count;  // also dodges cursor overflow at max
        cursor = last + 1;
      }
      if (past_hi || next == nullptr) return count;
      const uint64_t nv = next->lock.ReadLockOrRestart(&restart);
      if (restart) break;
      n = next;
      v = nv;
    }
  }
}

uint64_t BPlusTree::RangeScanOptimistic(uint64_t lo, uint64_t hi,
                                        std::vector<uint64_t>* out) const {
  return ScanOptimisticImpl(
      lo, hi, [out](uint64_t, uint64_t value) { out->push_back(value); });
}

uint64_t BPlusTree::RangeScanEntriesOptimistic(
    uint64_t lo, uint64_t hi,
    std::vector<std::pair<uint64_t, uint64_t>>* out) const {
  return ScanOptimisticImpl(lo, hi, [out](uint64_t key, uint64_t value) {
    out->emplace_back(key, value);
  });
}

Result<BPlusTree> BPlusTree::BulkLoad(const std::vector<uint64_t>& keys,
                                      const std::vector<uint64_t>& values,
                                      uint32_t fanout) {
  if (keys.size() != values.size()) {
    return Status::InvalidArgument("keys/values size mismatch");
  }
  for (size_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] >= keys[i]) {
      return Status::InvalidArgument("keys must be strictly increasing");
    }
  }
  BPlusTree tree(fanout);
  // Build the leaf level packed full.
  std::vector<Node*> level;
  std::vector<uint64_t> seps;  // smallest key of each node except the first
  size_t i = 0;
  Node* prev = nullptr;
  while (i < keys.size()) {
    Node* leaf = tree.NewLeaf();
    const size_t take = std::min<size_t>(fanout, keys.size() - i);
    for (size_t k = 0; k < take; ++k) {
      leaf->keys[k].store(keys[i + k], std::memory_order_relaxed);
      leaf->values[k].store(values[i + k], std::memory_order_relaxed);
    }
    leaf->count.store(static_cast<uint32_t>(take), std::memory_order_relaxed);
    if (prev != nullptr) prev->next.store(leaf, std::memory_order_relaxed);
    if (!level.empty()) {
      seps.push_back(leaf->keys[0].load(std::memory_order_relaxed));
    }
    level.push_back(leaf);
    prev = leaf;
    i += take;
  }
  if (level.empty()) {
    return tree;  // keeps the default empty-leaf root
  }
  tree.FreeTree(tree.root_.load(std::memory_order_relaxed));
  --tree.node_count_;
  tree.size_ = keys.size();

  // Build inner levels bottom-up.
  while (level.size() > 1) {
    std::vector<Node*> parents;
    std::vector<uint64_t> parent_seps;
    size_t c = 0;
    while (c < level.size()) {
      Node* inner = tree.NewInner();
      size_t take_children = std::min<size_t>(fanout + 1, level.size() - c);
      // Avoid leaving a lone child for the final parent.
      if (level.size() - c - take_children == 1) --take_children;
      for (size_t k = 0; k < take_children; ++k) {
        inner->children[k].store(level[c + k], std::memory_order_relaxed);
        if (k > 0) {
          inner->keys[k - 1].store(seps[c + k - 1],
                                   std::memory_order_relaxed);
        }
      }
      inner->count.store(static_cast<uint32_t>(take_children - 1),
                         std::memory_order_relaxed);
      if (!parents.empty()) parent_seps.push_back(seps[c - 1]);
      parents.push_back(inner);
      c += take_children;
    }
    level = std::move(parents);
    seps = std::move(parent_seps);
  }
  tree.root_.store(level[0], std::memory_order_relaxed);
  return tree;
}

uint32_t BPlusTree::height() const {
  uint32_t h = 1;
  const Node* n = root_.load(std::memory_order_relaxed);
  while (!n->leaf) {
    n = n->children[0].load(std::memory_order_relaxed);
    ++h;
  }
  return h;
}

uint64_t BPlusTree::MemoryBytes() const {
  // Approximation: per-node key/value/child storage at capacity.
  return node_count_ * (sizeof(Node) + fanout_ * 2 * sizeof(uint64_t) +
                        (fanout_ + 1) * sizeof(Node*));
}

}  // namespace hwstar::ops
