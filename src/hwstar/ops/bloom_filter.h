#ifndef HWSTAR_OPS_BLOOM_FILTER_H_
#define HWSTAR_OPS_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hwstar::ops {

/// Standard Bloom filter: k hash functions spread over the whole bit
/// array. Each negative query touches up to k random cache lines -- the
/// hardware-oblivious layout.
class BloomFilter {
 public:
  /// Sizes the array for `expected` keys at `bits_per_key` (k is derived
  /// as round(0.693 * bits_per_key), the optimum).
  BloomFilter(uint64_t expected, uint32_t bits_per_key = 10);

  void Add(uint64_t key);
  bool MayContain(uint64_t key) const;

  /// Batched query with group prefetching: hashes `group_size` keys (0 =
  /// hw::DefaultProbeGroupSize), prefetches each key's first probe word,
  /// then tests the group. out[i] is bit-identical to MayContain(keys[i]).
  /// Later probe words of a k-probe query still miss serially -- the
  /// scattered layout is exactly why the blocked variant below exists.
  void MayContainBatch(const uint64_t* keys, size_t n, bool* out,
                       uint32_t group_size = 0) const;

  uint64_t bit_count() const { return bit_count_; }
  uint32_t num_hashes() const { return num_hashes_; }
  uint64_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Measured false-positive probability over a sample of keys known to
  /// be absent.
  double MeasureFpp(const std::vector<uint64_t>& absent_sample) const;

 private:
  uint64_t bit_count_;
  uint32_t num_hashes_;
  std::vector<uint64_t> words_;
};

/// Cache-blocked ("register-blocked") Bloom filter: the first hash picks
/// one 512-bit block (a single cache line); all k probe bits live inside
/// that block. Every query -- positive or negative -- costs exactly one
/// cache miss, at a small false-positive-rate penalty. The
/// hardware-conscious variant (Putze et al.), benchmarked in A4.
class BlockedBloomFilter {
 public:
  BlockedBloomFilter(uint64_t expected, uint32_t bits_per_key = 10);

  void Add(uint64_t key);

  /// One 512-bit vector compare against the key's block: the k probe bits
  /// are expanded into a cache-line-wide mask and tested at once on the
  /// active hwstar::simd backend, instead of k dependent bit-test
  /// iterations.
  bool MayContain(uint64_t key) const;

  /// Batched query with group prefetching. Because every query touches
  /// exactly one cache line, one prefetch per key covers the whole query:
  /// the group runs at full memory-level parallelism, which makes this
  /// the strongest batch win of the filter pair. The hash phase runs
  /// data-parallel (simd::Mix64Batch) and each test is one 512-bit vector
  /// compare, so SIMD composes multiplicatively with the prefetch win.
  /// out[i] is bit-identical to MayContain(keys[i]).
  void MayContainBatch(const uint64_t* keys, size_t n, bool* out,
                       uint32_t group_size = 0) const;

  uint64_t num_blocks() const { return num_blocks_; }
  uint32_t num_hashes() const { return num_hashes_; }
  uint64_t MemoryBytes() const { return num_blocks_ * kBlockBytes; }

  double MeasureFpp(const std::vector<uint64_t>& absent_sample) const;

  static constexpr uint32_t kBlockBytes = 64;
  static constexpr uint32_t kBlockBits = kBlockBytes * 8;

 private:
  uint64_t num_blocks_;
  uint32_t num_hashes_;
  std::vector<uint64_t> words_;  // num_blocks_ * 8 words
};

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_BLOOM_FILTER_H_
