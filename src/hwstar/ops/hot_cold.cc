#include "hwstar/ops/hot_cold.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "hwstar/common/macros.h"

namespace hwstar::ops {

ExponentialSmoothingEstimator::ExponentialSmoothingEstimator(
    double alpha, uint32_t sample_rate_permille)
    : alpha_(alpha),
      one_minus_alpha_(1.0 - alpha),
      sample_rate_permille_(sample_rate_permille) {
  HWSTAR_CHECK(alpha > 0.0 && alpha < 1.0);
  HWSTAR_CHECK(sample_rate_permille >= 1 && sample_rate_permille <= 1000);
}

double ExponentialSmoothingEstimator::Decayed(const KeyState& s,
                                              uint64_t now) const {
  if (now <= s.last_time) return s.estimate;
  return s.estimate *
         std::pow(one_minus_alpha_, static_cast<double>(now - s.last_time));
}

void ExponentialSmoothingEstimator::Record(uint64_t key, uint64_t now) {
  // Deterministic 1-in-N sampling (every access advances the counter so
  // sampled estimates stay unbiased in expectation).
  ++counter_;
  if (sample_rate_permille_ < 1000 &&
      (counter_ * sample_rate_permille_) % 1000 >= sample_rate_permille_) {
    return;
  }
  KeyState& s = state_[key];
  s.estimate = Decayed(s, now) + alpha_;
  s.last_time = now;
}

double ExponentialSmoothingEstimator::Estimate(uint64_t key,
                                               uint64_t now) const {
  auto it = state_.find(key);
  if (it == state_.end()) return 0.0;
  return Decayed(it->second, now);
}

std::vector<uint64_t> ExponentialSmoothingEstimator::TopK(uint64_t k,
                                                          uint64_t now) const {
  std::vector<std::pair<double, uint64_t>> scored;
  scored.reserve(state_.size());
  for (const auto& [key, s] : state_) {
    scored.emplace_back(Decayed(s, now), key);
  }
  const uint64_t take = std::min<uint64_t>(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first ||
                             (a.first == b.first && a.second < b.second);
                    });
  std::vector<uint64_t> out;
  out.reserve(take);
  for (uint64_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

LruTracker::LruTracker(uint64_t capacity) : capacity_(capacity) {
  HWSTAR_CHECK(capacity >= 1);
}

bool LruTracker::Access(uint64_t key) {
  auto it = where_.find(key);
  if (it != where_.end()) {
    order_.erase(it->second);
    order_.push_front(key);
    it->second = order_.begin();
    ++hits_;
    return true;
  }
  ++misses_;
  order_.push_front(key);
  where_[key] = order_.begin();
  if (order_.size() > capacity_) {
    where_.erase(order_.back());
    order_.pop_back();
  }
  return false;
}

double FixedSetHitRate(const std::vector<uint64_t>& hot_set,
                       const std::vector<uint64_t>& trace) {
  if (trace.empty()) return 0.0;
  std::unordered_set<uint64_t> hot(hot_set.begin(), hot_set.end());
  uint64_t hits = 0;
  for (uint64_t key : trace) hits += hot.count(key);
  return static_cast<double>(hits) / static_cast<double>(trace.size());
}

}  // namespace hwstar::ops
