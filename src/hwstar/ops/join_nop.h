#ifndef HWSTAR_OPS_JOIN_NOP_H_
#define HWSTAR_OPS_JOIN_NOP_H_

#include <cstdint>

#include "hwstar/exec/executor.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/ops/relation.h"

namespace hwstar::ops {

/// Options for the no-partitioning join.
struct NoPartitionJoinOptions {
  bool materialize = false;   ///< collect JoinPairs (else count only)
  double load_factor = 0.5;   ///< build table load factor
  exec::Executor* pool = nullptr;  ///< parallel probe when set
  /// Pre-filter probes with a cache-blocked Bloom filter built over the
  /// build keys. One guaranteed-single-miss filter probe replaces a
  /// potentially chain-long table probe; pays off when many probes miss
  /// (semi-join-reduced workloads), costs a little when all match.
  bool use_bloom = false;
  uint32_t bloom_bits_per_key = 10;
  /// Build the shared table with CAS-claimed slots across the pool's
  /// workers (requires `pool`); the classic parallel-NPO build.
  bool parallel_build = false;
};

/// The "hardware-oblivious" no-partitioning hash join (NPO): build one
/// shared hash table over R, probe it with every tuple of S. Simple and
/// parallelism-friendly, but once |R| exceeds the last-level cache every
/// probe is a random DRAM access -- exactly the failure mode the paper
/// says oblivious software walks into. Serves as the baseline for E2.
JoinResult NoPartitionHashJoin(const Relation& build, const Relation& probe,
                               const NoPartitionJoinOptions& options = {});

/// Same algorithm over a chained hash table (the pointer-chasing textbook
/// variant; strictly worse locality, used in the A2 ablation).
JoinResult NoPartitionChainedJoin(const Relation& build, const Relation& probe,
                                  const NoPartitionJoinOptions& options = {});

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_JOIN_NOP_H_
