#ifndef HWSTAR_OPS_MERGE_H_
#define HWSTAR_OPS_MERGE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace hwstar::ops {

/// K-way merge of sorted runs via a loser tree. The loser tree is the
/// cache-conscious tournament structure of classical external sorting,
/// back in fashion for main-memory merge phases: selecting the next
/// minimum costs exactly ceil(log2(k)) comparisons along one root-to-leaf
/// path of a *flat array* (no pointers, no branch-heavy heap sift), and
/// the tree occupies k contiguous slots that stay cache-resident for any
/// practical fan-in.
class LoserTreeMerger {
 public:
  /// Creates a merger over `runs`; each run must be sorted ascending.
  /// Empty runs are permitted. The maximum uint64 value (~0) is reserved
  /// as the exhausted-run sentinel and must not appear in the input.
  explicit LoserTreeMerger(std::vector<std::span<const uint64_t>> runs);

  /// True while values remain.
  bool HasNext() const { return remaining_ != 0; }

  /// Pops the global minimum. Must not be called when !HasNext().
  uint64_t Next();

  /// Remaining value count.
  uint64_t remaining() const { return remaining_; }

 private:
  /// Current head value of run r, or kSentinel when exhausted.
  uint64_t HeadOf(uint32_t r) const;
  /// Replays the tournament along leaf r's path to the root.
  void Replay(uint32_t r);

  static constexpr uint64_t kSentinel = ~uint64_t{0};

  std::vector<std::span<const uint64_t>> runs_;
  std::vector<uint64_t> cursor_;  // next index within each run
  std::vector<uint32_t> tree_;    // internal nodes: losers; tree_[0] = winner
  uint32_t k_;                    // padded fan-in (power of two)
  uint64_t remaining_ = 0;
};

/// Convenience: merges sorted runs into one sorted vector using the loser
/// tree.
std::vector<uint64_t> MergeSortedRuns(
    const std::vector<std::vector<uint64_t>>& runs);

/// Baseline for the same task: repeated linear scan over run heads
/// (O(k) per output value; the oblivious implementation a loser tree
/// replaces).
std::vector<uint64_t> MergeSortedRunsLinear(
    const std::vector<std::vector<uint64_t>>& runs);

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_MERGE_H_
