#include "hwstar/ops/join_radix.h"

#include <atomic>
#include <mutex>

#include "hwstar/common/bits.h"
#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"
#include "hwstar/common/timer.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/ops/partition.h"

namespace hwstar::ops {

namespace {

/// Partition id of a key for the given bit window. The pre-hash decouples
/// partitioning from key distribution (dense keys would otherwise map
/// entire value ranges to one partition).
HWSTAR_ALWAYS_INLINE uint64_t PartitionOf(uint64_t key, uint32_t radix_bits,
                                          uint32_t shift) {
  return bits::ExtractBits(Mix64(key), shift, radix_bits);
}

/// Joins co-partition [rb, re) x [sb, se) with a cache-resident hash table.
void JoinPartition(const Relation& r, uint64_t rb, uint64_t re,
                   const Relation& s, uint64_t sb, uint64_t se,
                   double load_factor, bool materialize,
                   uint64_t* matches, std::vector<JoinPair>* pairs) {
  if (rb == re || sb == se) return;
  LinearProbeTable table(re - rb, load_factor);
  for (uint64_t i = rb; i < re; ++i) {
    table.Insert(r.keys[i], r.payloads[i]);
  }
  // Batched probe: even with a cache-resident table, the group kernel
  // overlaps whatever misses remain (first touch, L1 conflict evictions)
  // and keeps the partition loop branch-light (probe_kernels.h).
  const uint64_t* probe_keys = s.keys.data() + sb;
  const size_t probe_n = static_cast<size_t>(se - sb);
  if (materialize) {
    *matches += table.ProbeBatch(
        probe_keys, probe_n, [&](size_t j, uint64_t build_payload) {
          pairs->push_back(JoinPair{build_payload, s.payloads[sb + j]});
        });
  } else {
    *matches += table.ProbeBatch(probe_keys, probe_n, [](size_t, uint64_t) {});
  }
}

}  // namespace

void RadixPartition(const Relation& input, uint32_t radix_bits,
                    uint32_t shift, Relation* output,
                    std::vector<uint64_t>* offsets) {
  const uint64_t fanout = uint64_t{1} << radix_bits;
  const uint64_t n = input.size();
  offsets->assign(fanout + 1, 0);

  // Pass A: histogram.
  for (uint64_t i = 0; i < n; ++i) {
    ++(*offsets)[PartitionOf(input.keys[i], radix_bits, shift) + 1];
  }
  // Prefix sum -> start offsets.
  for (uint64_t p = 1; p <= fanout; ++p) (*offsets)[p] += (*offsets)[p - 1];

  // Pass B: scatter.
  output->keys.resize(n);
  output->payloads.resize(n);
  std::vector<uint64_t> cursor(offsets->begin(), offsets->end() - 1);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t p = PartitionOf(input.keys[i], radix_bits, shift);
    const uint64_t dst = cursor[p]++;
    output->keys[dst] = input.keys[i];
    output->payloads[dst] = input.payloads[i];
  }
}

uint32_t RecommendRadixBits(uint64_t build_size, uint64_t cache_bytes) {
  if (build_size == 0 || cache_bytes == 0) return 0;
  // Tuples (16B) plus a half-full 16B-slot table: ~48 bytes per build tuple.
  const uint64_t bytes_per_tuple = 48;
  uint64_t total = build_size * bytes_per_tuple;
  if (total <= cache_bytes) return 0;
  uint64_t parts = (total + cache_bytes - 1) / cache_bytes;
  return bits::Log2Ceil(parts);
}

JoinResult RadixHashJoin(const Relation& build, const Relation& probe,
                         const RadixJoinOptions& options,
                         RadixJoinTiming* timing) {
  HWSTAR_CHECK(options.num_passes == 1 || options.num_passes == 2);
  HWSTAR_CHECK(options.radix_bits <= 24);
  JoinResult result;
  WallTimer timer;

  Relation r_part, s_part;
  std::vector<uint64_t> r_off, s_off;

  if (options.radix_bits == 0) {
    // Degenerate case: no partitioning; fall through to one big join.
    r_part = build;
    s_part = probe;
    r_off = {0, build.size()};
    s_off = {0, probe.size()};
  } else if (options.num_passes == 1) {
    if (options.buffered_scatter) {
      RadixPartitionBuffered(build, options.radix_bits, 0, &r_part, &r_off);
      RadixPartitionBuffered(probe, options.radix_bits, 0, &s_part, &s_off);
    } else {
      RadixPartition(build, options.radix_bits, 0, &r_part, &r_off);
      RadixPartition(probe, options.radix_bits, 0, &s_part, &s_off);
    }
  } else {
    // Two passes: low bits first, then high bits within each partition.
    // Each pass has fan-out 2^(bits/2), keeping the write-target set within
    // TLB reach -- the whole point of multi-pass partitioning.
    const uint32_t bits1 = options.radix_bits / 2;
    const uint32_t bits2 = options.radix_bits - bits1;
    Relation r_tmp, s_tmp;
    std::vector<uint64_t> r_off1, s_off1;
    RadixPartition(build, bits1, 0, &r_tmp, &r_off1);
    RadixPartition(probe, bits1, 0, &s_tmp, &s_off1);

    const uint64_t fanout1 = uint64_t{1} << bits1;
    const uint64_t fanout = uint64_t{1} << options.radix_bits;
    r_part.keys.resize(r_tmp.size());
    r_part.payloads.resize(r_tmp.size());
    s_part.keys.resize(s_tmp.size());
    s_part.payloads.resize(s_tmp.size());
    r_off.assign(fanout + 1, 0);
    s_off.assign(fanout + 1, 0);

    // Sub-partition each pass-1 bucket. The global partition id is
    // (p1 << bits2) | p2 so that logical partition order equals physical
    // layout order (p1-major), making `off` a plain monotone offset array.
    // R and S use the same id mapping, so co-partitions stay aligned.
    auto second_pass = [&](const Relation& tmp,
                           const std::vector<uint64_t>& off1, Relation* out,
                           std::vector<uint64_t>* off) {
      const uint64_t fanout2 = uint64_t{1} << bits2;
      for (uint64_t p1 = 0; p1 < fanout1; ++p1) {
        const uint64_t begin = off1[p1], end = off1[p1 + 1];
        // Histogram of the sub-partitions.
        std::vector<uint64_t> hist(fanout2, 0);
        for (uint64_t i = begin; i < end; ++i) {
          ++hist[PartitionOf(tmp.keys[i], bits2, bits1)];
        }
        std::vector<uint64_t> cursor(fanout2, 0);
        uint64_t acc = begin;
        for (uint64_t p2 = 0; p2 < fanout2; ++p2) {
          cursor[p2] = acc;
          (*off)[(p1 << bits2) | p2] = acc;
          acc += hist[p2];
        }
        for (uint64_t i = begin; i < end; ++i) {
          const uint64_t p2 = PartitionOf(tmp.keys[i], bits2, bits1);
          const uint64_t dst = cursor[p2]++;
          out->keys[dst] = tmp.keys[i];
          out->payloads[dst] = tmp.payloads[i];
        }
      }
      (*off)[fanout] = tmp.size();
    };
    second_pass(r_tmp, r_off1, &r_part, &r_off);
    second_pass(s_tmp, s_off1, &s_part, &s_off);
  }

  if (timing != nullptr) timing->partition_seconds = timer.ElapsedSeconds();
  timer.Restart();

  const uint64_t fanout = r_off.size() - 1;
  if (options.pool == nullptr) {
    for (uint64_t p = 0; p < fanout; ++p) {
      JoinPartition(r_part, r_off[p], r_off[p + 1], s_part, s_off[p],
                    s_off[p + 1], options.load_factor, options.materialize,
                    &result.matches, &result.pairs);
    }
  } else {
    std::atomic<uint64_t> matches{0};
    std::mutex pairs_mutex;
    for (uint64_t p = 0; p < fanout; ++p) {
      options.pool->Submit([&, p](uint32_t /*worker*/) {
        uint64_t local_matches = 0;
        std::vector<JoinPair> local_pairs;
        JoinPartition(r_part, r_off[p], r_off[p + 1], s_part, s_off[p],
                      s_off[p + 1], options.load_factor, options.materialize,
                      &local_matches, &local_pairs);
        matches.fetch_add(local_matches, std::memory_order_relaxed);
        if (!local_pairs.empty()) {
          std::lock_guard<std::mutex> lock(pairs_mutex);
          result.pairs.insert(result.pairs.end(), local_pairs.begin(),
                              local_pairs.end());
        }
      });
    }
    options.pool->WaitIdle();
    result.matches = matches.load(std::memory_order_relaxed);
  }

  if (timing != nullptr) timing->join_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace hwstar::ops
