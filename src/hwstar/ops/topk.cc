#include "hwstar/ops/topk.h"

#include <algorithm>

#include "hwstar/common/random.h"

namespace hwstar::ops {

std::vector<uint64_t> TopKBySort(std::span<const uint64_t> values,
                                 uint64_t k) {
  std::vector<uint64_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<uint64_t>());
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::vector<uint64_t> TopKByHeap(std::span<const uint64_t> values,
                                 uint64_t k) {
  if (k == 0) return {};
  // Min-heap of the current top-k; the root is the smallest qualifier, so
  // most inputs fail one comparison and never touch the heap.
  std::vector<uint64_t> heap;
  heap.reserve(k);
  for (uint64_t v : values) {
    if (heap.size() < k) {
      heap.push_back(v);
      std::push_heap(heap.begin(), heap.end(), std::greater<uint64_t>());
    } else if (v > heap.front()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<uint64_t>());
      heap.back() = v;
      std::push_heap(heap.begin(), heap.end(), std::greater<uint64_t>());
    }
  }
  std::sort(heap.begin(), heap.end(), std::greater<uint64_t>());
  return heap;
}

std::vector<uint64_t> TopKByThreshold(std::span<const uint64_t> values,
                                      uint64_t k, uint64_t seed) {
  const uint64_t n = values.size();
  if (k == 0 || n == 0) return TopKBySort(values, k);
  if (k >= n) return TopKBySort(values, k);

  // Pass 0: estimate the k-th largest from a sample, with slack so the
  // filter (almost) never loses a qualifier; fall back to exact when it
  // does.
  const uint64_t kSample = 1024;
  hwstar::Xoshiro256 rng(seed);
  std::vector<uint64_t> sample;
  sample.reserve(kSample);
  for (uint64_t i = 0; i < kSample; ++i) {
    sample.push_back(values[rng.NextBounded(n)]);
  }
  std::sort(sample.begin(), sample.end(), std::greater<uint64_t>());
  // Expected rank scaling with 2x slack: take the sample value whose
  // rank corresponds to ~2k/n of the population, clamped.
  uint64_t idx = std::min<uint64_t>(
      sample.size() - 1,
      (2 * k * sample.size()) / n + 1);
  uint64_t threshold = sample[idx];

  // Pass 1: branch-free filter of candidates >= threshold.
  std::vector<uint64_t> candidates;
  candidates.resize(n);
  uint64_t count = 0;
  for (uint64_t i = 0; i < n; ++i) {
    candidates[count] = values[i];
    count += values[i] >= threshold;
  }
  candidates.resize(count);
  if (count < k) {
    // Sample misjudged the tail: exact fallback (rare).
    return TopKBySort(values, k);
  }
  // Pass 2: finish on the (small) candidate set.
  std::sort(candidates.begin(), candidates.end(), std::greater<uint64_t>());
  candidates.resize(k);
  return candidates;
}

}  // namespace hwstar::ops
