#ifndef HWSTAR_OPS_AGGREGATION_H_
#define HWSTAR_OPS_AGGREGATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hwstar/exec/morsel.h"

namespace hwstar::ops {

/// One group of a grouped aggregate.
struct GroupSum {
  uint64_t key;
  int64_t sum;
  uint64_t count;
};

/// Options for grouped aggregation.
struct HashAggregateOptions {
  /// Partition-first aggregation: radix-partition the input so each
  /// partition's group table is cache-resident (the hardware-conscious
  /// variant). 0 disables partitioning.
  uint32_t radix_bits = 0;
  exec::Executor* pool = nullptr;  ///< parallel per-partition aggregation
};

/// SUM/COUNT per key over parallel key/value arrays. Results are returned
/// sorted by key for deterministic comparison. With many distinct groups
/// the naive single-table variant misses cache on every update; the
/// partitioned variant restores locality -- same story as the joins, shown
/// in E2's sibling ablation.
std::vector<GroupSum> HashAggregate(std::span<const uint64_t> keys,
                                    std::span<const int64_t> values,
                                    const HashAggregateOptions& options = {});

/// Plain (ungrouped) sum: the bandwidth-bound kernel used by the scaling
/// experiments. Explicitly data-parallel on the active hwstar::simd
/// backend; bit-identical to the sequential loop (mod-2^64 accumulation
/// is reassociation-exact).
int64_t Sum(std::span<const int64_t> values);

/// Columnar min/max on the active simd backend. Empty input returns the
/// identity (INT64_MAX for Min, INT64_MIN for Max).
int64_t Min(std::span<const int64_t> values);
int64_t Max(std::span<const int64_t> values);

/// Parallel sum over the executor (morsel-driven; morsel_size 0 reads the
/// tune::MorselRows knob). Each morsel body runs the simd Sum kernel.
int64_t ParallelSum(std::span<const int64_t> values, exec::Executor* pool,
                    uint64_t morsel_size = 0);

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_AGGREGATION_H_
