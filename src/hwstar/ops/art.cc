#include "hwstar/ops/art.h"

#include <cstring>

#include "hwstar/common/macros.h"
#include "hwstar/ops/probe_kernels.h"

namespace hwstar::ops {

namespace {

/// Big-endian byte i of the key (byte 0 is most significant), so that
/// lexicographic trie order equals numeric key order.
inline uint8_t KeyByte(uint64_t key, uint32_t depth) {
  return static_cast<uint8_t>(key >> (56 - 8 * depth));
}

constexpr uint32_t kMaxDepth = 8;

}  // namespace

struct AdaptiveRadixTree::Node {
  enum Kind : uint8_t { kLeaf, kN4, kN16, kN48, kN256 };

  explicit Node(Kind k) : kind(k) {}

  Kind kind;
  uint8_t prefix_len = 0;   // compressed-path bytes below the parent edge
  uint8_t prefix[8] = {0};
  uint16_t count = 0;       // children in use (inner nodes)

  // Leaf payload.
  uint64_t key = 0;
  uint64_t value = 0;

  // Inner-node child storage. Only the fields of the active layout are
  // meaningful; the adaptive growth path is N4 -> N16 -> N48 -> N256.
  uint8_t keys4[4] = {0};
  Node* children4[4] = {nullptr};
  uint8_t keys16[16] = {0};
  Node* children16[16] = {nullptr};
  uint8_t child_index48[256] = {0};  // 0 = empty, else child slot + 1
  Node* children48[48] = {nullptr};
  Node** children256 = nullptr;      // lazily allocated [256]

  ~Node() { delete[] children256; }
};

namespace {

using Node = AdaptiveRadixTree::Node;

Node* NewLeaf(uint64_t key, uint64_t value) {
  Node* n = new Node(Node::kLeaf);
  n->key = key;
  n->value = value;
  return n;
}

Node* NewNode(Node::Kind kind) {
  Node* n = new Node(kind);
  if (kind == Node::kN256) {
    n->children256 = new Node*[256]();
  }
  return n;
}

/// Finds the child for byte b, or nullptr.
Node* FindChild(const Node* n, uint8_t b) {
  switch (n->kind) {
    case Node::kN4:
      for (uint16_t i = 0; i < n->count; ++i) {
        if (n->keys4[i] == b) return n->children4[i];
      }
      return nullptr;
    case Node::kN16:
      for (uint16_t i = 0; i < n->count; ++i) {
        if (n->keys16[i] == b) return n->children16[i];
      }
      return nullptr;
    case Node::kN48: {
      uint8_t idx = n->child_index48[b];
      return idx == 0 ? nullptr : n->children48[idx - 1];
    }
    case Node::kN256:
      return n->children256[b];
    default:
      return nullptr;
  }
}

/// Adds child b -> c; grows the node (returning the replacement) when the
/// layout is full. The caller must store the returned pointer.
Node* AddChild(Node* n, uint8_t b, Node* c) {
  switch (n->kind) {
    case Node::kN4: {
      if (n->count < 4) {
        // Insert keeping keys sorted (cheap at width 4).
        uint16_t pos = 0;
        while (pos < n->count && n->keys4[pos] < b) ++pos;
        for (uint16_t i = n->count; i > pos; --i) {
          n->keys4[i] = n->keys4[i - 1];
          n->children4[i] = n->children4[i - 1];
        }
        n->keys4[pos] = b;
        n->children4[pos] = c;
        ++n->count;
        return n;
      }
      // Grow to N16.
      Node* big = NewNode(Node::kN16);
      big->prefix_len = n->prefix_len;
      std::memcpy(big->prefix, n->prefix, sizeof(n->prefix));
      for (uint16_t i = 0; i < 4; ++i) {
        big->keys16[i] = n->keys4[i];
        big->children16[i] = n->children4[i];
      }
      big->count = 4;
      delete n;
      return AddChild(big, b, c);
    }
    case Node::kN16: {
      if (n->count < 16) {
        uint16_t pos = 0;
        while (pos < n->count && n->keys16[pos] < b) ++pos;
        for (uint16_t i = n->count; i > pos; --i) {
          n->keys16[i] = n->keys16[i - 1];
          n->children16[i] = n->children16[i - 1];
        }
        n->keys16[pos] = b;
        n->children16[pos] = c;
        ++n->count;
        return n;
      }
      Node* big = NewNode(Node::kN48);
      big->prefix_len = n->prefix_len;
      std::memcpy(big->prefix, n->prefix, sizeof(n->prefix));
      for (uint16_t i = 0; i < 16; ++i) {
        big->children48[i] = n->children16[i];
        big->child_index48[n->keys16[i]] = static_cast<uint8_t>(i + 1);
      }
      big->count = 16;
      delete n;
      return AddChild(big, b, c);
    }
    case Node::kN48: {
      if (n->count < 48) {
        n->children48[n->count] = c;
        n->child_index48[b] = static_cast<uint8_t>(n->count + 1);
        ++n->count;
        return n;
      }
      Node* big = NewNode(Node::kN256);
      big->prefix_len = n->prefix_len;
      std::memcpy(big->prefix, n->prefix, sizeof(n->prefix));
      for (uint32_t byte = 0; byte < 256; ++byte) {
        uint8_t idx = n->child_index48[byte];
        if (idx != 0) big->children256[byte] = n->children48[idx - 1];
      }
      big->count = 48;
      delete n;
      return AddChild(big, b, c);
    }
    case Node::kN256:
      HWSTAR_DCHECK(n->children256[b] == nullptr);
      n->children256[b] = c;
      ++n->count;
      return n;
    default:
      HWSTAR_CHECK(false);
      return n;
  }
}

/// Longest common prefix of two keys starting at `depth`; at most
/// kMaxDepth - depth bytes.
uint32_t CommonPrefixLen(uint64_t a, uint64_t b, uint32_t depth) {
  uint32_t len = 0;
  while (depth + len < kMaxDepth && KeyByte(a, depth + len) == KeyByte(b, depth + len)) {
    ++len;
  }
  return len;
}

/// Number of leading prefix bytes of `n` matching `key` at `depth`.
uint32_t PrefixMatchLen(const Node* n, uint64_t key, uint32_t depth) {
  uint32_t len = 0;
  while (len < n->prefix_len && depth + len < kMaxDepth &&
         n->prefix[len] == KeyByte(key, depth + len)) {
    ++len;
  }
  return len;
}

void FreeRec(Node* n) {
  if (n == nullptr) return;
  switch (n->kind) {
    case Node::kLeaf:
      break;
    case Node::kN4:
      for (uint16_t i = 0; i < n->count; ++i) FreeRec(n->children4[i]);
      break;
    case Node::kN16:
      for (uint16_t i = 0; i < n->count; ++i) FreeRec(n->children16[i]);
      break;
    case Node::kN48:
      for (uint32_t b = 0; b < 256; ++b) {
        if (n->child_index48[b] != 0) FreeRec(n->children48[n->child_index48[b] - 1]);
      }
      break;
    case Node::kN256:
      for (uint32_t b = 0; b < 256; ++b) FreeRec(n->children256[b]);
      break;
  }
  delete n;
}

/// Recursive insert; returns the (possibly replaced) subtree root.
Node* InsertRec(Node* n, uint64_t key, uint64_t value, uint32_t depth,
                uint64_t* size) {
  if (n == nullptr) {
    ++*size;
    return NewLeaf(key, value);
  }

  if (n->kind == Node::kLeaf) {
    if (n->key == key) {
      n->value = value;  // overwrite
      return n;
    }
    // Lazy expansion: split into an inner node holding the common prefix.
    const uint32_t lcp = CommonPrefixLen(n->key, key, depth);
    Node* inner = NewNode(Node::kN4);
    inner->prefix_len = static_cast<uint8_t>(lcp);
    for (uint32_t i = 0; i < lcp; ++i) inner->prefix[i] = KeyByte(key, depth + i);
    Node* result = inner;
    result = AddChild(result, KeyByte(n->key, depth + lcp), n);
    ++*size;
    result = AddChild(result, KeyByte(key, depth + lcp), NewLeaf(key, value));
    return result;
  }

  // Inner node: check the compressed path.
  const uint32_t match = PrefixMatchLen(n, key, depth);
  if (match < n->prefix_len) {
    // Path splits inside the prefix: new N4 with the matching part.
    Node* inner = NewNode(Node::kN4);
    inner->prefix_len = static_cast<uint8_t>(match);
    std::memcpy(inner->prefix, n->prefix, match);
    // Old node keeps the tail of its prefix after the split byte.
    const uint8_t split_byte = n->prefix[match];
    const uint8_t remaining = static_cast<uint8_t>(n->prefix_len - match - 1);
    std::memmove(n->prefix, n->prefix + match + 1, remaining);
    n->prefix_len = remaining;
    Node* result = inner;
    result = AddChild(result, split_byte, n);
    ++*size;
    result = AddChild(result, KeyByte(key, depth + match), NewLeaf(key, value));
    return result;
  }

  depth += n->prefix_len;
  const uint8_t b = KeyByte(key, depth);
  Node* child = FindChild(n, b);
  if (child == nullptr) {
    ++*size;
    return AddChild(n, b, NewLeaf(key, value));
  }
  Node* new_child = InsertRec(child, key, value, depth + 1, size);
  if (new_child != child) {
    // The child was replaced (leaf split or prefix split); patch the slot.
    switch (n->kind) {
      case Node::kN4:
        for (uint16_t i = 0; i < n->count; ++i) {
          if (n->keys4[i] == b) n->children4[i] = new_child;
        }
        break;
      case Node::kN16:
        for (uint16_t i = 0; i < n->count; ++i) {
          if (n->keys16[i] == b) n->children16[i] = new_child;
        }
        break;
      case Node::kN48:
        n->children48[n->child_index48[b] - 1] = new_child;
        break;
      case Node::kN256:
        n->children256[b] = new_child;
        break;
      default:
        HWSTAR_CHECK(false);
    }
  }
  return n;
}

/// Replaces the child slot for byte `b` with `c` (which must exist).
void PatchChild(Node* n, uint8_t b, Node* c) {
  switch (n->kind) {
    case Node::kN4:
      for (uint16_t i = 0; i < n->count; ++i) {
        if (n->keys4[i] == b) n->children4[i] = c;
      }
      break;
    case Node::kN16:
      for (uint16_t i = 0; i < n->count; ++i) {
        if (n->keys16[i] == b) n->children16[i] = c;
      }
      break;
    case Node::kN48:
      n->children48[n->child_index48[b] - 1] = c;
      break;
    case Node::kN256:
      n->children256[b] = c;
      break;
    default:
      HWSTAR_CHECK(false);
  }
}

/// Removes the child slot for byte `b` (which must exist) without freeing
/// the child node.
void RemoveChild(Node* n, uint8_t b) {
  switch (n->kind) {
    case Node::kN4: {
      uint16_t pos = 0;
      while (pos < n->count && n->keys4[pos] != b) ++pos;
      HWSTAR_DCHECK(pos < n->count);
      for (uint16_t i = pos; i + 1 < n->count; ++i) {
        n->keys4[i] = n->keys4[i + 1];
        n->children4[i] = n->children4[i + 1];
      }
      --n->count;
      return;
    }
    case Node::kN16: {
      uint16_t pos = 0;
      while (pos < n->count && n->keys16[pos] != b) ++pos;
      HWSTAR_DCHECK(pos < n->count);
      for (uint16_t i = pos; i + 1 < n->count; ++i) {
        n->keys16[i] = n->keys16[i + 1];
        n->children16[i] = n->children16[i + 1];
      }
      --n->count;
      return;
    }
    case Node::kN48: {
      const uint8_t slot = n->child_index48[b];
      HWSTAR_DCHECK(slot != 0);
      n->child_index48[b] = 0;
      // Keep the slot array dense: move the last occupied slot into the
      // hole and repoint whichever byte indexed it.
      const uint16_t last = n->count - 1;
      if (slot - 1 != last) {
        n->children48[slot - 1] = n->children48[last];
        for (uint32_t byte = 0; byte < 256; ++byte) {
          if (n->child_index48[byte] == last + 1) {
            n->child_index48[byte] = slot;
            break;
          }
        }
      }
      n->children48[last] = nullptr;
      --n->count;
      return;
    }
    case Node::kN256:
      HWSTAR_DCHECK(n->children256[b] != nullptr);
      n->children256[b] = nullptr;
      --n->count;
      return;
    default:
      HWSTAR_CHECK(false);
  }
}

/// The (byte, child) of the only child of a count==1 inner node.
void OnlyChild(const Node* n, uint8_t* byte, Node** child) {
  switch (n->kind) {
    case Node::kN4:
      *byte = n->keys4[0];
      *child = n->children4[0];
      return;
    case Node::kN16:
      *byte = n->keys16[0];
      *child = n->children16[0];
      return;
    case Node::kN48:
      for (uint32_t b = 0; b < 256; ++b) {
        if (n->child_index48[b] != 0) {
          *byte = static_cast<uint8_t>(b);
          *child = n->children48[n->child_index48[b] - 1];
          return;
        }
      }
      break;
    case Node::kN256:
      for (uint32_t b = 0; b < 256; ++b) {
        if (n->children256[b] != nullptr) {
          *byte = static_cast<uint8_t>(b);
          *child = n->children256[b];
          return;
        }
      }
      break;
    default:
      break;
  }
  HWSTAR_CHECK(false);
}

/// Recursive erase; returns the (possibly replaced or null) subtree root.
Node* EraseRec(Node* n, uint64_t key, uint32_t depth, bool* erased) {
  if (n == nullptr) return nullptr;

  if (n->kind == Node::kLeaf) {
    if (n->key != key) return n;
    delete n;
    *erased = true;
    return nullptr;
  }

  if (PrefixMatchLen(n, key, depth) < n->prefix_len) return n;
  depth += n->prefix_len;
  const uint8_t b = KeyByte(key, depth);
  Node* child = FindChild(n, b);
  if (child == nullptr) return n;

  Node* new_child = EraseRec(child, key, depth + 1, erased);
  if (new_child == child) return n;
  if (new_child != nullptr) {
    PatchChild(n, b, new_child);
    return n;
  }

  RemoveChild(n, b);
  if (n->count == 0) {
    // Only reachable transiently (inner nodes are created with >= 2
    // children); handled for safety.
    delete n;
    return nullptr;
  }
  if (n->count > 1) return n;

  // Path compression in reverse: fold this node's prefix and the edge
  // byte into the lone surviving child. A leaf carries its full key, so
  // it absorbs the collapse with no prefix surgery.
  uint8_t edge = 0;
  Node* only = nullptr;
  OnlyChild(n, &edge, &only);
  if (only->kind != Node::kLeaf) {
    HWSTAR_CHECK(static_cast<uint32_t>(n->prefix_len) + 1 + only->prefix_len <=
                 sizeof(only->prefix));
    uint8_t merged[sizeof(only->prefix)];
    std::memcpy(merged, n->prefix, n->prefix_len);
    merged[n->prefix_len] = edge;
    std::memcpy(merged + n->prefix_len + 1, only->prefix, only->prefix_len);
    only->prefix_len =
        static_cast<uint8_t>(n->prefix_len + 1 + only->prefix_len);
    std::memcpy(only->prefix, merged, only->prefix_len);
  }
  delete n;
  return only;
}

/// In-order traversal collecting values of keys in [lo, hi]. `partial`
/// holds the key bytes fixed so far (above `depth` bytes are decided), so
/// whole subtrees outside the range are pruned.
void ScanRec(const Node* n, uint32_t depth, uint64_t partial, uint64_t lo,
             uint64_t hi, std::vector<uint64_t>* out, uint64_t* count) {
  if (n == nullptr) return;
  if (n->kind == Node::kLeaf) {
    if (n->key >= lo && n->key <= hi) {
      out->push_back(n->value);
      ++*count;
    }
    return;
  }
  // Fold the compressed path into the partial key.
  for (uint32_t i = 0; i < n->prefix_len; ++i) {
    partial |= static_cast<uint64_t>(n->prefix[i]) << (56 - 8 * (depth + i));
  }
  depth += n->prefix_len;
  // Subtree bounds: bytes below `depth` range over [0x00.., 0xFF..].
  const uint32_t free_bits = 64 - 8 * depth;
  const uint64_t subtree_min = partial;
  const uint64_t subtree_max =
      free_bits >= 64 ? ~uint64_t{0}
                      : partial | ((free_bits == 0) ? 0 : ((uint64_t{1} << free_bits) - 1));
  if (subtree_max < lo || subtree_min > hi) return;

  auto visit = [&](uint8_t b, const Node* child) {
    const uint64_t child_partial =
        partial | (static_cast<uint64_t>(b) << (56 - 8 * depth));
    ScanRec(child, depth + 1, child_partial, lo, hi, out, count);
  };
  switch (n->kind) {
    case Node::kN4:
      for (uint16_t i = 0; i < n->count; ++i) visit(n->keys4[i], n->children4[i]);
      break;
    case Node::kN16:
      for (uint16_t i = 0; i < n->count; ++i) visit(n->keys16[i], n->children16[i]);
      break;
    case Node::kN48:
      for (uint32_t b = 0; b < 256; ++b) {
        if (n->child_index48[b] != 0) {
          visit(static_cast<uint8_t>(b), n->children48[n->child_index48[b] - 1]);
        }
      }
      break;
    case Node::kN256:
      for (uint32_t b = 0; b < 256; ++b) {
        if (n->children256[b] != nullptr) {
          visit(static_cast<uint8_t>(b), n->children256[b]);
        }
      }
      break;
    default:
      break;
  }
}

/// ScanRec's sibling for (key, value) pairs; same subtree pruning. Leaves
/// carry their full key, so no partial-key reconstruction is needed at
/// the emit point — `partial` exists only to prune.
void ScanEntriesRec(const Node* n, uint32_t depth, uint64_t partial,
                    uint64_t lo, uint64_t hi,
                    std::vector<std::pair<uint64_t, uint64_t>>* out,
                    uint64_t* count) {
  if (n == nullptr) return;
  if (n->kind == Node::kLeaf) {
    if (n->key >= lo && n->key <= hi) {
      out->emplace_back(n->key, n->value);
      ++*count;
    }
    return;
  }
  for (uint32_t i = 0; i < n->prefix_len; ++i) {
    partial |= static_cast<uint64_t>(n->prefix[i]) << (56 - 8 * (depth + i));
  }
  depth += n->prefix_len;
  const uint32_t free_bits = 64 - 8 * depth;
  const uint64_t subtree_min = partial;
  const uint64_t subtree_max =
      free_bits >= 64 ? ~uint64_t{0}
                      : partial | ((free_bits == 0) ? 0 : ((uint64_t{1} << free_bits) - 1));
  if (subtree_max < lo || subtree_min > hi) return;

  auto visit = [&](uint8_t b, const Node* child) {
    const uint64_t child_partial =
        partial | (static_cast<uint64_t>(b) << (56 - 8 * depth));
    ScanEntriesRec(child, depth + 1, child_partial, lo, hi, out, count);
  };
  switch (n->kind) {
    case Node::kN4:
      for (uint16_t i = 0; i < n->count; ++i) visit(n->keys4[i], n->children4[i]);
      break;
    case Node::kN16:
      for (uint16_t i = 0; i < n->count; ++i) visit(n->keys16[i], n->children16[i]);
      break;
    case Node::kN48:
      for (uint32_t b = 0; b < 256; ++b) {
        if (n->child_index48[b] != 0) {
          visit(static_cast<uint8_t>(b), n->children48[n->child_index48[b] - 1]);
        }
      }
      break;
    case Node::kN256:
      for (uint32_t b = 0; b < 256; ++b) {
        if (n->children256[b] != nullptr) {
          visit(static_cast<uint8_t>(b), n->children256[b]);
        }
      }
      break;
    default:
      break;
  }
}

void CensusRec(const Node* n, AdaptiveRadixTree::NodeCounts* counts) {
  if (n == nullptr) return;
  switch (n->kind) {
    case Node::kLeaf:
      ++counts->leaves;
      return;
    case Node::kN4:
      ++counts->node4;
      for (uint16_t i = 0; i < n->count; ++i) CensusRec(n->children4[i], counts);
      return;
    case Node::kN16:
      ++counts->node16;
      for (uint16_t i = 0; i < n->count; ++i) CensusRec(n->children16[i], counts);
      return;
    case Node::kN48:
      ++counts->node48;
      for (uint32_t b = 0; b < 256; ++b) {
        if (n->child_index48[b] != 0) {
          CensusRec(n->children48[n->child_index48[b] - 1], counts);
        }
      }
      return;
    case Node::kN256:
      ++counts->node256;
      for (uint32_t b = 0; b < 256; ++b) CensusRec(n->children256[b], counts);
      return;
  }
}

}  // namespace

AdaptiveRadixTree::~AdaptiveRadixTree() { FreeRec(root_); }

AdaptiveRadixTree::AdaptiveRadixTree(AdaptiveRadixTree&& other) noexcept
    : root_(other.root_), size_(other.size_) {
  other.root_ = nullptr;
  other.size_ = 0;
}

AdaptiveRadixTree& AdaptiveRadixTree::operator=(
    AdaptiveRadixTree&& other) noexcept {
  if (this != &other) {
    FreeRec(root_);
    root_ = other.root_;
    size_ = other.size_;
    other.root_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void AdaptiveRadixTree::Insert(uint64_t key, uint64_t value) {
  root_ = InsertRec(root_, key, value, 0, &size_);
}

bool AdaptiveRadixTree::Find(uint64_t key, uint64_t* value) const {
  const Node* n = root_;
  uint32_t depth = 0;
  while (n != nullptr) {
    if (n->kind == Node::kLeaf) {
      if (n->key == key) {
        *value = n->value;
        return true;
      }
      return false;
    }
    if (PrefixMatchLen(n, key, depth) < n->prefix_len) return false;
    depth += n->prefix_len;
    n = FindChild(n, KeyByte(key, depth));
    ++depth;
  }
  return false;
}

size_t AdaptiveRadixTree::FindBatch(const uint64_t* keys, size_t n,
                                    uint64_t* values, bool* found,
                                    uint32_t group_size) const {
  size_t hits = 0;
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t G = decltype(g)::value;
    for (size_t base = 0; base < n; base += G) {
      const uint32_t m =
          static_cast<uint32_t>(n - base < G ? n - base : G);
      if (m < G) {
        // Ragged tail: scalar descents.
        for (uint32_t j = 0; j < m; ++j) {
          uint64_t value = 0;
          const bool hit = Find(keys[base + j], &value);
          values[base + j] = hit ? value : 0;
          if (found != nullptr) found[base + j] = hit;
          hits += hit;
        }
        break;
      }
      // Interleaved descent: each round advances every live lane one
      // node and prefetches its next node, so the G dependent-load
      // chains overlap. A lane retires (leaf reached, prefix mismatch,
      // or missing child) by publishing its result and going inactive.
      const Node* cur[G];
      uint32_t depth[G];
      bool live[G];
      uint32_t active = m;
      for (uint32_t j = 0; j < m; ++j) {
        cur[j] = root_;
        depth[j] = 0;
        live[j] = true;
        if (root_ != nullptr) HWSTAR_PREFETCH(root_);
      }
      auto retire = [&](uint32_t j, uint64_t value, bool hit) {
        values[base + j] = value;
        if (found != nullptr) found[base + j] = hit;
        hits += hit;
        live[j] = false;
        --active;
      };
      while (active > 0) {
        for (uint32_t j = 0; j < m; ++j) {
          if (!live[j]) continue;
          const Node* node = cur[j];
          if (node == nullptr) {
            retire(j, 0, false);
            continue;
          }
          const uint64_t key = keys[base + j];
          if (node->kind == Node::kLeaf) {
            if (node->key == key) {
              retire(j, node->value, true);
            } else {
              retire(j, 0, false);
            }
            continue;
          }
          if (PrefixMatchLen(node, key, depth[j]) < node->prefix_len) {
            retire(j, 0, false);
            continue;
          }
          const uint32_t d = depth[j] + node->prefix_len;
          const Node* child = FindChild(node, KeyByte(key, d));
          if (child == nullptr) {
            retire(j, 0, false);
            continue;
          }
          // The child is the next round's dependent load; put its first
          // lines in flight now. Leaves keep key/value in the first
          // line; inner nodes spill their child arrays into the second.
          HWSTAR_PREFETCH(child);
          HWSTAR_PREFETCH(reinterpret_cast<const char*>(child) + 64);
          cur[j] = child;
          depth[j] = d + 1;
        }
      }
    }
  });
  return hits;
}

bool AdaptiveRadixTree::Erase(uint64_t key) {
  bool erased = false;
  root_ = EraseRec(root_, key, 0, &erased);
  if (erased) --size_;
  return erased;
}

uint64_t AdaptiveRadixTree::RangeScan(uint64_t lo, uint64_t hi,
                                      std::vector<uint64_t>* out) const {
  uint64_t count = 0;
  ScanRec(root_, 0, 0, lo, hi, out, &count);
  return count;
}

uint64_t AdaptiveRadixTree::RangeScanEntries(
    uint64_t lo, uint64_t hi,
    std::vector<std::pair<uint64_t, uint64_t>>* out) const {
  uint64_t count = 0;
  ScanEntriesRec(root_, 0, 0, lo, hi, out, &count);
  return count;
}

AdaptiveRadixTree::NodeCounts AdaptiveRadixTree::CountNodes() const {
  NodeCounts counts;
  CensusRec(root_, &counts);
  return counts;
}

uint64_t AdaptiveRadixTree::MemoryBytes() const {
  NodeCounts c = CountNodes();
  const uint64_t inner = c.node4 + c.node16 + c.node48 + c.node256;
  return (inner + c.leaves) * sizeof(Node) + c.node256 * 256 * sizeof(Node*);
}

}  // namespace hwstar::ops
