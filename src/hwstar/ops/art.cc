#include "hwstar/ops/art.h"

#include <cstring>

#include "hwstar/common/macros.h"
#include "hwstar/ops/probe_kernels.h"
#include "hwstar/sync/epoch.h"
#include "hwstar/sync/optlock.h"

namespace hwstar::ops {

namespace {

/// Big-endian byte i of the key (byte 0 is most significant), so that
/// lexicographic trie order equals numeric key order.
inline uint8_t KeyByte(uint64_t key, uint32_t depth) {
  return static_cast<uint8_t>(key >> (56 - 8 * depth));
}

constexpr uint32_t kMaxDepth = 8;

}  // namespace

/// Node layout notes for the concurrent read path: every field a
/// latch-free reader can observe while the writer mutates it in place is
/// a std::atomic accessed with relaxed loads -- consistency comes from
/// OptLock version validation (sample, read, re-check), the atomics only
/// rule out torn words and data races. Fields that are written once
/// before the node is published through a release store (kind, leaf key,
/// the children256 array pointer) stay plain. Child pointers use
/// acquire/release so a reader that follows a freshly published pointer
/// sees the child fully constructed.
struct AdaptiveRadixTree::Node {
  enum Kind : uint8_t { kLeaf, kN4, kN16, kN48, kN256 };

  explicit Node(Kind k) : kind(k) {}

  sync::OptLock lock;
  const Kind kind;                        // never changes; growth replaces nodes
  std::atomic<uint8_t> prefix_len{0};     // compressed-path bytes below parent
  std::atomic<uint8_t> prefix[8];
  std::atomic<uint16_t> count{0};         // children in use (inner nodes)

  // Leaf payload. The key is immutable after publication; the value is
  // overwritten in place (a single atomic store, so readers need no lock
  // to see it untorn).
  uint64_t key = 0;
  std::atomic<uint64_t> value{0};

  // Inner-node child storage. Only the fields of the active layout are
  // meaningful; the adaptive growth path is N4 -> N16 -> N48 -> N256.
  // (C++20 value-initializes default-constructed atomics to zero.)
  std::atomic<uint8_t> keys4[4];
  std::atomic<Node*> children4[4];
  std::atomic<uint8_t> keys16[16];
  std::atomic<Node*> children16[16];
  std::atomic<uint8_t> child_index48[256];  // 0 = empty, else child slot + 1
  std::atomic<Node*> children48[48];
  std::atomic<Node*>* children256 = nullptr;  // allocated before publication

  ~Node() { delete[] children256; }
};

namespace {

using Node = AdaptiveRadixTree::Node;

Node* NewLeaf(uint64_t key, uint64_t value) {
  Node* n = new Node(Node::kLeaf);
  n->key = key;
  n->value.store(value, std::memory_order_relaxed);
  return n;
}

Node* NewNode(Node::Kind kind) {
  Node* n = new Node(kind);
  if (kind == Node::kN256) {
    n->children256 = new std::atomic<Node*>[256]();
  }
  return n;
}

size_t NodeBytes(const Node* n) {
  return sizeof(Node) +
         (n->kind == Node::kN256 ? 256 * sizeof(std::atomic<Node*>) : 0);
}

/// Finds the child for byte b, or nullptr. Safe for latch-free readers:
/// the result must be validated against the node version before being
/// dereferenced (a racing writer can make any combination of count/keys/
/// slot reads stale, but never out of bounds).
Node* FindChild(const Node* n, uint8_t b) {
  switch (n->kind) {
    case Node::kN4: {
      const uint16_t cnt = n->count.load(std::memory_order_relaxed);
      for (uint16_t i = 0; i < cnt; ++i) {
        if (n->keys4[i].load(std::memory_order_relaxed) == b) {
          return n->children4[i].load(std::memory_order_acquire);
        }
      }
      return nullptr;
    }
    case Node::kN16: {
      const uint16_t cnt = n->count.load(std::memory_order_relaxed);
      for (uint16_t i = 0; i < cnt; ++i) {
        if (n->keys16[i].load(std::memory_order_relaxed) == b) {
          return n->children16[i].load(std::memory_order_acquire);
        }
      }
      return nullptr;
    }
    case Node::kN48: {
      const uint8_t idx = n->child_index48[b].load(std::memory_order_relaxed);
      return idx == 0 ? nullptr
                      : n->children48[idx - 1].load(std::memory_order_acquire);
    }
    case Node::kN256:
      return n->children256[b].load(std::memory_order_acquire);
    default:
      return nullptr;
  }
}

/// The slot holding the child for byte b (writer-side; the child must
/// exist). Stable until the writer itself mutates this node.
std::atomic<Node*>* ChildSlot(Node* n, uint8_t b) {
  switch (n->kind) {
    case Node::kN4: {
      const uint16_t cnt = n->count.load(std::memory_order_relaxed);
      for (uint16_t i = 0; i < cnt; ++i) {
        if (n->keys4[i].load(std::memory_order_relaxed) == b) {
          return &n->children4[i];
        }
      }
      break;
    }
    case Node::kN16: {
      const uint16_t cnt = n->count.load(std::memory_order_relaxed);
      for (uint16_t i = 0; i < cnt; ++i) {
        if (n->keys16[i].load(std::memory_order_relaxed) == b) {
          return &n->children16[i];
        }
      }
      break;
    }
    case Node::kN48: {
      const uint8_t idx = n->child_index48[b].load(std::memory_order_relaxed);
      if (idx != 0) return &n->children48[idx - 1];
      break;
    }
    case Node::kN256:
      return &n->children256[b];
    default:
      break;
  }
  HWSTAR_CHECK(false);
  return nullptr;
}

bool HasRoom(const Node* n) {
  const uint16_t cnt = n->count.load(std::memory_order_relaxed);
  switch (n->kind) {
    case Node::kN4:
      return cnt < 4;
    case Node::kN16:
      return cnt < 16;
    case Node::kN48:
      return cnt < 48;
    case Node::kN256:
      return true;
    default:
      HWSTAR_CHECK(false);
      return false;
  }
}

/// Adds child b -> c into a node with room. The caller either holds the
/// node's write lock (so concurrent readers restart instead of observing
/// the N4/N16 shift mid-flight) or owns the node privately (not yet
/// published).
void AddChildInPlace(Node* n, uint8_t b, Node* c) {
  const uint16_t cnt = n->count.load(std::memory_order_relaxed);
  switch (n->kind) {
    case Node::kN4: {
      // Insert keeping keys sorted (cheap at width 4).
      uint16_t pos = 0;
      while (pos < cnt && n->keys4[pos].load(std::memory_order_relaxed) < b) {
        ++pos;
      }
      for (uint16_t i = cnt; i > pos; --i) {
        n->keys4[i].store(n->keys4[i - 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
        n->children4[i].store(
            n->children4[i - 1].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      n->keys4[pos].store(b, std::memory_order_relaxed);
      n->children4[pos].store(c, std::memory_order_release);
      break;
    }
    case Node::kN16: {
      uint16_t pos = 0;
      while (pos < cnt && n->keys16[pos].load(std::memory_order_relaxed) < b) {
        ++pos;
      }
      for (uint16_t i = cnt; i > pos; --i) {
        n->keys16[i].store(n->keys16[i - 1].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
        n->children16[i].store(
            n->children16[i - 1].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      n->keys16[pos].store(b, std::memory_order_relaxed);
      n->children16[pos].store(c, std::memory_order_release);
      break;
    }
    case Node::kN48:
      n->children48[cnt].store(c, std::memory_order_release);
      n->child_index48[b].store(static_cast<uint8_t>(cnt + 1),
                                std::memory_order_release);
      break;
    case Node::kN256:
      HWSTAR_DCHECK(n->children256[b].load(std::memory_order_relaxed) ==
                    nullptr);
      n->children256[b].store(c, std::memory_order_release);
      break;
    default:
      HWSTAR_CHECK(false);
  }
  n->count.store(static_cast<uint16_t>(cnt + 1), std::memory_order_relaxed);
}

/// A private copy of full node `n` in the next-larger layout. The copy is
/// published by the caller; `n` stays untouched for in-flight readers.
Node* GrowCopy(const Node* n) {
  Node* big = nullptr;
  switch (n->kind) {
    case Node::kN4: {
      big = NewNode(Node::kN16);
      for (uint16_t i = 0; i < 4; ++i) {
        big->keys16[i].store(n->keys4[i].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
        big->children16[i].store(
            n->children4[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      big->count.store(4, std::memory_order_relaxed);
      break;
    }
    case Node::kN16: {
      big = NewNode(Node::kN48);
      for (uint16_t i = 0; i < 16; ++i) {
        big->children48[i].store(
            n->children16[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        big->child_index48[n->keys16[i].load(std::memory_order_relaxed)].store(
            static_cast<uint8_t>(i + 1), std::memory_order_relaxed);
      }
      big->count.store(16, std::memory_order_relaxed);
      break;
    }
    case Node::kN48: {
      big = NewNode(Node::kN256);
      for (uint32_t byte = 0; byte < 256; ++byte) {
        const uint8_t idx =
            n->child_index48[byte].load(std::memory_order_relaxed);
        if (idx != 0) {
          big->children256[byte].store(
              n->children48[idx - 1].load(std::memory_order_relaxed),
              std::memory_order_relaxed);
        }
      }
      big->count.store(48, std::memory_order_relaxed);
      break;
    }
    default:
      HWSTAR_CHECK(false);
  }
  big->prefix_len.store(n->prefix_len.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  for (uint32_t i = 0; i < sizeof(n->prefix) / sizeof(n->prefix[0]); ++i) {
    big->prefix[i].store(n->prefix[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  return big;
}

/// Removes the child slot for byte `b` (which must exist) without freeing
/// the child node. Caller holds the node's write lock.
void RemoveChildInPlace(Node* n, uint8_t b) {
  const uint16_t cnt = n->count.load(std::memory_order_relaxed);
  switch (n->kind) {
    case Node::kN4: {
      uint16_t pos = 0;
      while (pos < cnt && n->keys4[pos].load(std::memory_order_relaxed) != b) {
        ++pos;
      }
      HWSTAR_DCHECK(pos < cnt);
      for (uint16_t i = pos; i + 1 < cnt; ++i) {
        n->keys4[i].store(n->keys4[i + 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
        n->children4[i].store(
            n->children4[i + 1].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      break;
    }
    case Node::kN16: {
      uint16_t pos = 0;
      while (pos < cnt && n->keys16[pos].load(std::memory_order_relaxed) != b) {
        ++pos;
      }
      HWSTAR_DCHECK(pos < cnt);
      for (uint16_t i = pos; i + 1 < cnt; ++i) {
        n->keys16[i].store(n->keys16[i + 1].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
        n->children16[i].store(
            n->children16[i + 1].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      break;
    }
    case Node::kN48: {
      const uint8_t slot = n->child_index48[b].load(std::memory_order_relaxed);
      HWSTAR_DCHECK(slot != 0);
      n->child_index48[b].store(0, std::memory_order_relaxed);
      // Keep the slot array dense: move the last occupied slot into the
      // hole and repoint whichever byte indexed it.
      const uint16_t last = cnt - 1;
      if (slot - 1 != last) {
        n->children48[slot - 1].store(
            n->children48[last].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        for (uint32_t byte = 0; byte < 256; ++byte) {
          if (n->child_index48[byte].load(std::memory_order_relaxed) ==
              last + 1) {
            n->child_index48[byte].store(slot, std::memory_order_relaxed);
            break;
          }
        }
      }
      n->children48[last].store(nullptr, std::memory_order_relaxed);
      break;
    }
    case Node::kN256:
      HWSTAR_DCHECK(n->children256[b].load(std::memory_order_relaxed) !=
                    nullptr);
      n->children256[b].store(nullptr, std::memory_order_relaxed);
      break;
    default:
      HWSTAR_CHECK(false);
  }
  n->count.store(static_cast<uint16_t>(cnt - 1), std::memory_order_relaxed);
}

/// The (byte, child) of the only child of a count==1 inner node.
void OnlyChild(const Node* n, uint8_t* byte, Node** child) {
  switch (n->kind) {
    case Node::kN4:
      *byte = n->keys4[0].load(std::memory_order_relaxed);
      *child = n->children4[0].load(std::memory_order_relaxed);
      return;
    case Node::kN16:
      *byte = n->keys16[0].load(std::memory_order_relaxed);
      *child = n->children16[0].load(std::memory_order_relaxed);
      return;
    case Node::kN48:
      for (uint32_t b = 0; b < 256; ++b) {
        const uint8_t idx =
            n->child_index48[b].load(std::memory_order_relaxed);
        if (idx != 0) {
          *byte = static_cast<uint8_t>(b);
          *child = n->children48[idx - 1].load(std::memory_order_relaxed);
          return;
        }
      }
      break;
    case Node::kN256:
      for (uint32_t b = 0; b < 256; ++b) {
        Node* c = n->children256[b].load(std::memory_order_relaxed);
        if (c != nullptr) {
          *byte = static_cast<uint8_t>(b);
          *child = c;
          return;
        }
      }
      break;
    default:
      break;
  }
  HWSTAR_CHECK(false);
}

/// Longest common prefix of two keys starting at `depth`; at most
/// kMaxDepth - depth bytes.
uint32_t CommonPrefixLen(uint64_t a, uint64_t b, uint32_t depth) {
  uint32_t len = 0;
  while (depth + len < kMaxDepth &&
         KeyByte(a, depth + len) == KeyByte(b, depth + len)) {
    ++len;
  }
  return len;
}

/// Number of leading prefix bytes of `n` matching `key` at `depth`.
/// Reader-safe: every read is bounded regardless of staleness, and the
/// caller validates the node version before trusting the result.
uint32_t PrefixMatchLen(const Node* n, uint64_t key, uint32_t depth) {
  const uint32_t pl = n->prefix_len.load(std::memory_order_relaxed);
  uint32_t len = 0;
  while (len < pl && len < sizeof(n->prefix) / sizeof(n->prefix[0]) &&
         depth + len < kMaxDepth &&
         n->prefix[len].load(std::memory_order_relaxed) ==
             KeyByte(key, depth + len)) {
    ++len;
  }
  return len;
}

void FreeRec(Node* n) {
  if (n == nullptr) return;
  const uint16_t cnt = n->count.load(std::memory_order_relaxed);
  switch (n->kind) {
    case Node::kLeaf:
      break;
    case Node::kN4:
      for (uint16_t i = 0; i < cnt; ++i) {
        FreeRec(n->children4[i].load(std::memory_order_relaxed));
      }
      break;
    case Node::kN16:
      for (uint16_t i = 0; i < cnt; ++i) {
        FreeRec(n->children16[i].load(std::memory_order_relaxed));
      }
      break;
    case Node::kN48:
      for (uint32_t b = 0; b < 256; ++b) {
        const uint8_t idx =
            n->child_index48[b].load(std::memory_order_relaxed);
        if (idx != 0) {
          FreeRec(n->children48[idx - 1].load(std::memory_order_relaxed));
        }
      }
      break;
    case Node::kN256:
      for (uint32_t b = 0; b < 256; ++b) {
        FreeRec(n->children256[b].load(std::memory_order_relaxed));
      }
      break;
  }
  delete n;
}

void RetireNode(sync::EpochManager* epoch, Node* n) {
  if (epoch == nullptr) {
    delete n;
    return;
  }
  epoch->Retire(
      n, [](void* p) { delete static_cast<Node*>(p); }, NodeBytes(n));
}

/// In-order traversal collecting values of keys in [lo, hi]. `partial`
/// holds the key bytes fixed so far (above `depth` bytes are decided), so
/// whole subtrees outside the range are pruned. Requires writer exclusion
/// (the relaxed loads are for coexistence with latch-free point readers,
/// not with a racing writer).
void ScanRec(const Node* n, uint32_t depth, uint64_t partial, uint64_t lo,
             uint64_t hi, std::vector<uint64_t>* out, uint64_t* count) {
  if (n == nullptr) return;
  if (n->kind == Node::kLeaf) {
    if (n->key >= lo && n->key <= hi) {
      out->push_back(n->value.load(std::memory_order_relaxed));
      ++*count;
    }
    return;
  }
  // Fold the compressed path into the partial key.
  const uint32_t pl = n->prefix_len.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < pl; ++i) {
    partial |= static_cast<uint64_t>(
                   n->prefix[i].load(std::memory_order_relaxed))
               << (56 - 8 * (depth + i));
  }
  depth += pl;
  // Subtree bounds: bytes below `depth` range over [0x00.., 0xFF..].
  const uint32_t free_bits = 64 - 8 * depth;
  const uint64_t subtree_min = partial;
  const uint64_t subtree_max =
      free_bits >= 64
          ? ~uint64_t{0}
          : partial |
                ((free_bits == 0) ? 0 : ((uint64_t{1} << free_bits) - 1));
  if (subtree_max < lo || subtree_min > hi) return;

  auto visit = [&](uint8_t b, const Node* child) {
    const uint64_t child_partial =
        partial | (static_cast<uint64_t>(b) << (56 - 8 * depth));
    ScanRec(child, depth + 1, child_partial, lo, hi, out, count);
  };
  const uint16_t cnt = n->count.load(std::memory_order_relaxed);
  switch (n->kind) {
    case Node::kN4:
      for (uint16_t i = 0; i < cnt; ++i) {
        visit(n->keys4[i].load(std::memory_order_relaxed),
              n->children4[i].load(std::memory_order_relaxed));
      }
      break;
    case Node::kN16:
      for (uint16_t i = 0; i < cnt; ++i) {
        visit(n->keys16[i].load(std::memory_order_relaxed),
              n->children16[i].load(std::memory_order_relaxed));
      }
      break;
    case Node::kN48:
      for (uint32_t b = 0; b < 256; ++b) {
        const uint8_t idx =
            n->child_index48[b].load(std::memory_order_relaxed);
        if (idx != 0) {
          visit(static_cast<uint8_t>(b),
                n->children48[idx - 1].load(std::memory_order_relaxed));
        }
      }
      break;
    case Node::kN256:
      for (uint32_t b = 0; b < 256; ++b) {
        const Node* c = n->children256[b].load(std::memory_order_relaxed);
        if (c != nullptr) visit(static_cast<uint8_t>(b), c);
      }
      break;
    default:
      break;
  }
}

/// ScanRec's sibling for (key, value) pairs; same subtree pruning. Leaves
/// carry their full key, so no partial-key reconstruction is needed at
/// the emit point — `partial` exists only to prune.
void ScanEntriesRec(const Node* n, uint32_t depth, uint64_t partial,
                    uint64_t lo, uint64_t hi,
                    std::vector<std::pair<uint64_t, uint64_t>>* out,
                    uint64_t* count) {
  if (n == nullptr) return;
  if (n->kind == Node::kLeaf) {
    if (n->key >= lo && n->key <= hi) {
      out->emplace_back(n->key, n->value.load(std::memory_order_relaxed));
      ++*count;
    }
    return;
  }
  const uint32_t pl = n->prefix_len.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < pl; ++i) {
    partial |= static_cast<uint64_t>(
                   n->prefix[i].load(std::memory_order_relaxed))
               << (56 - 8 * (depth + i));
  }
  depth += pl;
  const uint32_t free_bits = 64 - 8 * depth;
  const uint64_t subtree_min = partial;
  const uint64_t subtree_max =
      free_bits >= 64
          ? ~uint64_t{0}
          : partial |
                ((free_bits == 0) ? 0 : ((uint64_t{1} << free_bits) - 1));
  if (subtree_max < lo || subtree_min > hi) return;

  auto visit = [&](uint8_t b, const Node* child) {
    const uint64_t child_partial =
        partial | (static_cast<uint64_t>(b) << (56 - 8 * depth));
    ScanEntriesRec(child, depth + 1, child_partial, lo, hi, out, count);
  };
  const uint16_t cnt = n->count.load(std::memory_order_relaxed);
  switch (n->kind) {
    case Node::kN4:
      for (uint16_t i = 0; i < cnt; ++i) {
        visit(n->keys4[i].load(std::memory_order_relaxed),
              n->children4[i].load(std::memory_order_relaxed));
      }
      break;
    case Node::kN16:
      for (uint16_t i = 0; i < cnt; ++i) {
        visit(n->keys16[i].load(std::memory_order_relaxed),
              n->children16[i].load(std::memory_order_relaxed));
      }
      break;
    case Node::kN48:
      for (uint32_t b = 0; b < 256; ++b) {
        const uint8_t idx =
            n->child_index48[b].load(std::memory_order_relaxed);
        if (idx != 0) {
          visit(static_cast<uint8_t>(b),
                n->children48[idx - 1].load(std::memory_order_relaxed));
        }
      }
      break;
    case Node::kN256:
      for (uint32_t b = 0; b < 256; ++b) {
        const Node* c = n->children256[b].load(std::memory_order_relaxed);
        if (c != nullptr) visit(static_cast<uint8_t>(b), c);
      }
      break;
    default:
      break;
  }
}

void CensusRec(const Node* n, AdaptiveRadixTree::NodeCounts* counts) {
  if (n == nullptr) return;
  const uint16_t cnt = n->count.load(std::memory_order_relaxed);
  switch (n->kind) {
    case Node::kLeaf:
      ++counts->leaves;
      return;
    case Node::kN4:
      ++counts->node4;
      for (uint16_t i = 0; i < cnt; ++i) {
        CensusRec(n->children4[i].load(std::memory_order_relaxed), counts);
      }
      return;
    case Node::kN16:
      ++counts->node16;
      for (uint16_t i = 0; i < cnt; ++i) {
        CensusRec(n->children16[i].load(std::memory_order_relaxed), counts);
      }
      return;
    case Node::kN48:
      ++counts->node48;
      for (uint32_t b = 0; b < 256; ++b) {
        const uint8_t idx =
            n->child_index48[b].load(std::memory_order_relaxed);
        if (idx != 0) {
          CensusRec(n->children48[idx - 1].load(std::memory_order_relaxed),
                    counts);
        }
      }
      return;
    case Node::kN256:
      ++counts->node256;
      for (uint32_t b = 0; b < 256; ++b) {
        CensusRec(n->children256[b].load(std::memory_order_relaxed), counts);
      }
      return;
  }
}

}  // namespace

AdaptiveRadixTree::~AdaptiveRadixTree() {
  FreeRec(root_.load(std::memory_order_relaxed));
}

AdaptiveRadixTree::AdaptiveRadixTree(AdaptiveRadixTree&& other) noexcept
    : root_(other.root_.load(std::memory_order_relaxed)),
      size_(other.size_),
      epoch_(other.epoch_) {
  other.root_.store(nullptr, std::memory_order_relaxed);
  other.size_ = 0;
}

AdaptiveRadixTree& AdaptiveRadixTree::operator=(
    AdaptiveRadixTree&& other) noexcept {
  if (this != &other) {
    FreeRec(root_.load(std::memory_order_relaxed));
    root_.store(other.root_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    size_ = other.size_;
    epoch_ = other.epoch_;
    other.root_.store(nullptr, std::memory_order_relaxed);
    other.size_ = 0;
  }
  return *this;
}

/// The writer algorithms are iterative (the recursive versions patched
/// parent slots on unwind, after freeing replaced nodes -- the epoch
/// discipline needs the reverse: patch the slot first, then retire). Each
/// mutation follows one of two shapes:
///  - in place: write-lock the node, mutate, write-unlock (version bump
///    makes interleaved readers restart);
///  - by replacement: build the replacement privately, write-lock the old
///    node, publish the replacement into the parent slot with a release
///    store, mark the old node obsolete, retire it. Readers that still
///    hold the old pointer fail validation and restart; pinned readers
///    can still dereference it safely until the epoch frees it.
void AdaptiveRadixTree::Insert(uint64_t key, uint64_t value) {
  Node* n = root_.load(std::memory_order_relaxed);
  if (n == nullptr) {
    root_.store(NewLeaf(key, value), std::memory_order_release);
    ++size_;
    return;
  }
  std::atomic<Node*>* slot = &root_;  // the slot `n` was loaded from
  uint32_t depth = 0;
  for (;;) {
    if (n->kind == Node::kLeaf) {
      if (n->key == key) {
        n->value.store(value, std::memory_order_relaxed);  // overwrite
        return;
      }
      // Lazy expansion: split into an inner node holding the common
      // prefix. Both the old leaf and the tree above are unchanged, so
      // publishing the new inner into the parent slot is the only store
      // shared readers can see -- no locks needed.
      const uint32_t lcp = CommonPrefixLen(n->key, key, depth);
      Node* inner = NewNode(Node::kN4);
      inner->prefix_len.store(static_cast<uint8_t>(lcp),
                              std::memory_order_relaxed);
      for (uint32_t i = 0; i < lcp; ++i) {
        inner->prefix[i].store(KeyByte(key, depth + i),
                               std::memory_order_relaxed);
      }
      AddChildInPlace(inner, KeyByte(n->key, depth + lcp), n);
      AddChildInPlace(inner, KeyByte(key, depth + lcp), NewLeaf(key, value));
      slot->store(inner, std::memory_order_release);
      ++size_;
      return;
    }

    // Inner node: check the compressed path.
    const uint32_t pl = n->prefix_len.load(std::memory_order_relaxed);
    const uint32_t match = PrefixMatchLen(n, key, depth);
    if (match < pl) {
      // Path splits inside the prefix: new N4 with the matching part; `n`
      // keeps the tail of its prefix after the split byte. The prefix
      // shrink mutates `n` in place, so `n` stays write-locked from the
      // shrink until the parent slot points at the new inner -- otherwise
      // a reader could validate the shrunken prefix at the old depth and
      // descend to the wrong subtree.
      Node* inner = NewNode(Node::kN4);
      inner->prefix_len.store(static_cast<uint8_t>(match),
                              std::memory_order_relaxed);
      for (uint32_t i = 0; i < match; ++i) {
        inner->prefix[i].store(n->prefix[i].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
      }
      const uint8_t split_byte =
          n->prefix[match].load(std::memory_order_relaxed);
      AddChildInPlace(inner, split_byte, n);
      AddChildInPlace(inner, KeyByte(key, depth + match),
                      NewLeaf(key, value));
      n->lock.WriteLock();
      const uint8_t remaining = static_cast<uint8_t>(pl - match - 1);
      for (uint32_t i = 0; i < remaining; ++i) {
        n->prefix[i].store(
            n->prefix[match + 1 + i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      n->prefix_len.store(remaining, std::memory_order_relaxed);
      slot->store(inner, std::memory_order_release);
      n->lock.WriteUnlock();
      ++size_;
      return;
    }

    depth += pl;
    const uint8_t b = KeyByte(key, depth);
    Node* child = FindChild(n, b);
    if (child == nullptr) {
      Node* leaf = NewLeaf(key, value);
      if (HasRoom(n)) {
        n->lock.WriteLock();
        AddChildInPlace(n, b, leaf);
        n->lock.WriteUnlock();
      } else {
        // Adaptive growth by replacement: N4 -> N16 -> N48 -> N256.
        Node* big = GrowCopy(n);
        AddChildInPlace(big, b, leaf);
        n->lock.WriteLock();
        slot->store(big, std::memory_order_release);
        n->lock.WriteUnlockObsolete();
        RetireNode(epoch_, n);
      }
      ++size_;
      return;
    }
    slot = ChildSlot(n, b);
    n = child;
    ++depth;
  }
}

bool AdaptiveRadixTree::Find(uint64_t key, uint64_t* value) const {
  for (;;) {
    bool restart = false;
    const Node* n = root_.load(std::memory_order_acquire);
    if (n == nullptr) return false;
    uint64_t v = n->lock.ReadLockOrRestart(&restart);
    if (restart) continue;
    uint32_t depth = 0;
    bool hit = false;
    uint64_t val = 0;
    for (;;) {
      if (n->kind == Node::kLeaf) {
        const uint64_t leaf_key = n->key;  // immutable after publication
        val = n->value.load(std::memory_order_relaxed);
        n->lock.CheckOrRestart(v, &restart);
        if (restart) break;
        hit = (leaf_key == key);
        break;
      }
      const uint32_t pl = n->prefix_len.load(std::memory_order_relaxed);
      const uint32_t match = PrefixMatchLen(n, key, depth);
      if (match < pl) {
        n->lock.CheckOrRestart(v, &restart);
        break;  // miss if validated, restart otherwise
      }
      const uint32_t d = depth + pl;
      if (d >= kMaxDepth) {
        // Inner nodes sit above depth 8 in any consistent tree; a deeper
        // apparent position means the fields were torn by a writer.
        restart = true;
        break;
      }
      const Node* child = FindChild(n, KeyByte(key, d));
      // Validate before trusting (or dereferencing) the child pointer:
      // this is the "lock coupling" step done with versions.
      n->lock.CheckOrRestart(v, &restart);
      if (restart) break;
      if (child == nullptr) break;  // validated miss
      const uint64_t cv = child->lock.ReadLockOrRestart(&restart);
      if (restart) break;
      n = child;
      v = cv;
      depth = d + 1;
    }
    if (restart) continue;
    if (hit && value != nullptr) *value = val;
    return hit;
  }
}

size_t AdaptiveRadixTree::FindBatch(const uint64_t* keys, size_t n,
                                    uint64_t* values, bool* found,
                                    uint32_t group_size) const {
  size_t hits = 0;
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t G = decltype(g)::value;
    for (size_t base = 0; base < n; base += G) {
      const uint32_t m = static_cast<uint32_t>(n - base < G ? n - base : G);
      if (m < G) {
        // Ragged tail: scalar descents (each with its own restart loop).
        for (uint32_t j = 0; j < m; ++j) {
          uint64_t value = 0;
          const bool hit = Find(keys[base + j], &value);
          values[base + j] = hit ? value : 0;
          if (found != nullptr) found[base + j] = hit;
          hits += hit;
        }
        break;
      }
      // Interleaved descent: each round advances every live lane one
      // node and prefetches its next node, so the G dependent-load
      // chains overlap. A lane retires (leaf reached, prefix mismatch,
      // or missing child) by publishing its result and going inactive.
      //
      // Concurrency: one restart loop wraps the whole group descent. Any
      // lane's version validation failure restarts every lane from the
      // root -- keeping lanes level-interleaved is the point of the
      // kernel, and a restart is rare enough (one writer, localized
      // locks) that redoing G descents costs less than managing ragged
      // per-lane restarts inside the rounds. Output slots are rewritten
      // on restart; hits commit only after a clean pass.
      for (;;) {
        bool restart = false;
        const Node* root = root_.load(std::memory_order_acquire);
        if (root == nullptr) {
          for (uint32_t j = 0; j < m; ++j) {
            values[base + j] = 0;
            if (found != nullptr) found[base + j] = false;
          }
          break;
        }
        const uint64_t rv = root->lock.ReadLockOrRestart(&restart);
        if (restart) continue;
        const Node* cur[G];
        uint64_t ver[G];
        uint32_t depth[G];
        bool live[G];
        uint32_t active = m;
        size_t group_hits = 0;
        for (uint32_t j = 0; j < m; ++j) {
          cur[j] = root;
          ver[j] = rv;
          depth[j] = 0;
          live[j] = true;
        }
        HWSTAR_PREFETCH(root);
        auto retire = [&](uint32_t j, uint64_t value, bool hit) {
          values[base + j] = value;
          if (found != nullptr) found[base + j] = hit;
          group_hits += hit;
          live[j] = false;
          --active;
        };
        while (active > 0 && !restart) {
          for (uint32_t j = 0; j < m && !restart; ++j) {
            if (!live[j]) continue;
            const Node* node = cur[j];
            const uint64_t key = keys[base + j];
            if (node->kind == Node::kLeaf) {
              const uint64_t leaf_key = node->key;
              const uint64_t val =
                  node->value.load(std::memory_order_relaxed);
              node->lock.CheckOrRestart(ver[j], &restart);
              if (restart) break;
              if (leaf_key == key) {
                retire(j, val, true);
              } else {
                retire(j, 0, false);
              }
              continue;
            }
            const uint32_t pl =
                node->prefix_len.load(std::memory_order_relaxed);
            if (PrefixMatchLen(node, key, depth[j]) < pl) {
              node->lock.CheckOrRestart(ver[j], &restart);
              if (restart) break;
              retire(j, 0, false);
              continue;
            }
            const uint32_t d = depth[j] + pl;
            if (d >= kMaxDepth) {
              restart = true;
              break;
            }
            const Node* child = FindChild(node, KeyByte(key, d));
            node->lock.CheckOrRestart(ver[j], &restart);
            if (restart) break;
            if (child == nullptr) {
              retire(j, 0, false);
              continue;
            }
            const uint64_t cv = child->lock.ReadLockOrRestart(&restart);
            if (restart) break;
            // The child is the next round's dependent load; put its first
            // lines in flight now. Leaves keep key/value in the first
            // line; inner nodes spill their child arrays into the second.
            HWSTAR_PREFETCH(child);
            HWSTAR_PREFETCH(reinterpret_cast<const char*>(child) + 64);
            cur[j] = child;
            ver[j] = cv;
            depth[j] = d + 1;
          }
        }
        if (!restart) {
          hits += group_hits;
          break;
        }
      }
    }
  });
  return hits;
}

bool AdaptiveRadixTree::Erase(uint64_t key) {
  Node* n = root_.load(std::memory_order_relaxed);
  if (n == nullptr) return false;

  if (n->kind == Node::kLeaf) {
    if (n->key != key) return false;
    n->lock.WriteLock();
    root_.store(nullptr, std::memory_order_release);
    n->lock.WriteUnlockObsolete();
    RetireNode(epoch_, n);
    --size_;
    return true;
  }

  // Descend to the parent of the leaf holding `key`, remembering the slot
  // the current inner node was loaded from (needed if it collapses).
  std::atomic<Node*>* nslot = &root_;
  uint32_t depth = 0;
  for (;;) {
    const uint32_t pl = n->prefix_len.load(std::memory_order_relaxed);
    if (PrefixMatchLen(n, key, depth) < pl) return false;
    depth += pl;
    const uint8_t b = KeyByte(key, depth);
    Node* child = FindChild(n, b);
    if (child == nullptr) return false;

    if (child->kind != Node::kLeaf) {
      nslot = ChildSlot(n, b);
      n = child;
      ++depth;
      continue;
    }
    if (child->key != key) return false;

    // Unlink the leaf from `n`; collapse `n` if one child remains.
    n->lock.WriteLock();
    RemoveChildInPlace(n, b);
    const uint16_t cnt = n->count.load(std::memory_order_relaxed);
    HWSTAR_DCHECK(cnt >= 1);  // inner nodes always carried >= 2 children
    if (cnt >= 2) {
      n->lock.WriteUnlock();
    } else {
      // Path compression in reverse: fold this node's prefix and the edge
      // byte into the lone surviving child, then splice the child into
      // this node's slot. A leaf carries its full key, so it absorbs the
      // collapse with no prefix surgery. The child's prefix mutates in
      // place, so it is locked from the merge until after the splice is
      // visible; `n` dies obsolete.
      uint8_t edge = 0;
      Node* only = nullptr;
      OnlyChild(n, &edge, &only);
      if (only->kind != Node::kLeaf) {
        only->lock.WriteLock();
        const uint32_t n_pl = n->prefix_len.load(std::memory_order_relaxed);
        const uint32_t o_pl =
            only->prefix_len.load(std::memory_order_relaxed);
        HWSTAR_CHECK(n_pl + 1 + o_pl <= sizeof(Node::prefix) /
                                            sizeof(std::atomic<uint8_t>));
        uint8_t merged[sizeof(Node::prefix) / sizeof(std::atomic<uint8_t>)];
        for (uint32_t i = 0; i < n_pl; ++i) {
          merged[i] = n->prefix[i].load(std::memory_order_relaxed);
        }
        merged[n_pl] = edge;
        for (uint32_t i = 0; i < o_pl; ++i) {
          merged[n_pl + 1 + i] =
              only->prefix[i].load(std::memory_order_relaxed);
        }
        const uint32_t merged_len = n_pl + 1 + o_pl;
        for (uint32_t i = 0; i < merged_len; ++i) {
          only->prefix[i].store(merged[i], std::memory_order_relaxed);
        }
        only->prefix_len.store(static_cast<uint8_t>(merged_len),
                               std::memory_order_relaxed);
        nslot->store(only, std::memory_order_release);
        n->lock.WriteUnlockObsolete();
        only->lock.WriteUnlock();
      } else {
        nslot->store(only, std::memory_order_release);
        n->lock.WriteUnlockObsolete();
      }
      RetireNode(epoch_, n);
    }
    // The leaf is unlinked; obsolete it so validating readers re-descend,
    // then retire. Pinned readers may still dereference it until the
    // epoch frees it.
    child->lock.WriteLock();
    child->lock.WriteUnlockObsolete();
    RetireNode(epoch_, child);
    --size_;
    return true;
  }
}

uint64_t AdaptiveRadixTree::RangeScan(uint64_t lo, uint64_t hi,
                                      std::vector<uint64_t>* out) const {
  uint64_t count = 0;
  ScanRec(root_.load(std::memory_order_acquire), 0, 0, lo, hi, out, &count);
  return count;
}

uint64_t AdaptiveRadixTree::RangeScanEntries(
    uint64_t lo, uint64_t hi,
    std::vector<std::pair<uint64_t, uint64_t>>* out) const {
  uint64_t count = 0;
  ScanEntriesRec(root_.load(std::memory_order_acquire), 0, 0, lo, hi, out,
                 &count);
  return count;
}

AdaptiveRadixTree::NodeCounts AdaptiveRadixTree::CountNodes() const {
  NodeCounts counts;
  CensusRec(root_.load(std::memory_order_acquire), &counts);
  return counts;
}

uint64_t AdaptiveRadixTree::MemoryBytes() const {
  NodeCounts c = CountNodes();
  const uint64_t inner = c.node4 + c.node16 + c.node48 + c.node256;
  return (inner + c.leaves) * sizeof(Node) + c.node256 * 256 * sizeof(Node*);
}

}  // namespace hwstar::ops
