#ifndef HWSTAR_OPS_CONCURRENT_HASH_TABLE_H_
#define HWSTAR_OPS_CONCURRENT_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"
#include "hwstar/ops/probe_kernels.h"

namespace hwstar::ops {

/// A lock-free-build open-addressing hash table: many threads insert
/// concurrently by claiming empty slots with compare-and-swap; after the
/// build completes, reads need no synchronization at all. This is how the
/// parallel no-partitioning join builds its single shared table -- the
/// "simple but synchronization-hungry" side of the design space the
/// radix join avoids by partitioning. Fixed capacity (sized up front),
/// duplicate keys allowed, no deletion.
class ConcurrentHashTable {
 public:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  /// Sizes for `expected` entries at `load_factor`.
  explicit ConcurrentHashTable(uint64_t expected, double load_factor = 0.5);

  ConcurrentHashTable(const ConcurrentHashTable&) = delete;
  ConcurrentHashTable& operator=(const ConcurrentHashTable&) = delete;

  /// Thread-safe insert (CAS slot claiming). Key ~0 is reserved. The
  /// caller must not insert more than `expected` entries (capacity is
  /// fixed); there is deliberately no shared insert counter -- a single
  /// atomic bumped by every thread would ping-pong its cache line and
  /// serialize the build (exactly the false-sharing cost E11 measures).
  void Insert(uint64_t key, uint64_t value);

  /// Counts entries matching `key`. Safe to call concurrently with other
  /// readers once all inserters have finished (or been synchronized-with).
  uint64_t CountMatches(uint64_t key) const;

  /// First matching value; false when absent. Same safety contract as
  /// CountMatches.
  bool Find(uint64_t key, uint64_t* value) const;

  /// Invokes fn(value) for every match; returns the match count. Same
  /// safety contract as CountMatches. Templated so the per-key path
  /// inlines the callable (no std::function indirection per match).
  template <typename Fn>
  uint32_t Probe(uint64_t key, Fn&& fn) const {
    uint64_t slot = HomeSlot(key);
    uint32_t matches = 0;
    for (;;) {
      const uint64_t k = keys_[slot].load(std::memory_order_acquire);
      if (k == kEmpty) return matches;
      if (k == key) {
        fn(values_[slot].load(std::memory_order_acquire));
        ++matches;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// Type-erased convenience overload; forwards to the template above.
  uint32_t Probe(uint64_t key, const std::function<void(uint64_t)>& fn) const {
    return Probe<const std::function<void(uint64_t)>&>(key, fn);
  }

  /// Batched Find with group prefetching (see LinearProbeTable::FindBatch
  /// for the exact results contract: values[i] = first match or 0,
  /// found[i] optional, returns hit count). The safety contract is the
  /// scalar one -- concurrent readers are always safe, and reading while
  /// builders are still inserting is safe but may miss (or observe a
  /// zero value for) entries whose publication races the probe; prefetch
  /// never changes that, as it has no architectural effect on the
  /// memory model.
  size_t FindBatch(const uint64_t* keys, size_t n, uint64_t* values,
                   bool* found, uint32_t group_size = 0) const;

  /// Batched full probe with group prefetching: fn(i, value) per match,
  /// in scalar loop order. Returns total matches. Same safety contract
  /// as CountMatches.
  template <typename Fn>
  uint64_t ProbeBatch(const uint64_t* keys, size_t n, Fn&& fn,
                      uint32_t group_size = 0) const {
    uint64_t matches = 0;
    WithProbeGroup(group_size, [&](auto g) {
      constexpr uint32_t G = decltype(g)::value;
      uint64_t slots[G];
      GroupPrefetchLoop<G>(
          n,
          [&](uint32_t lane, size_t i) {
            const uint64_t slot = HomeSlot(keys[i]);
            slots[lane] = slot;
            HWSTAR_PREFETCH(&keys_[slot]);
            HWSTAR_PREFETCH(&values_[slot]);
          },
          [&](uint32_t lane, size_t i) {
            const uint64_t key = keys[i];
            uint64_t slot = slots[lane];
            for (;;) {
              const uint64_t k = keys_[slot].load(std::memory_order_acquire);
              if (k == kEmpty) break;
              if (k == key) {
                fn(i, values_[slot].load(std::memory_order_acquire));
                ++matches;
              }
              slot = (slot + 1) & mask_;
            }
          });
    });
    return matches;
  }

  uint64_t capacity() const { return mask_ + 1; }

  /// Occupied-slot count, by scanning (O(capacity)). A diagnostic, not a
  /// hot-path accessor; see the Insert comment for why there is no
  /// incrementally-maintained counter.
  uint64_t size() const;

 private:
  uint64_t HomeSlot(uint64_t key) const { return Mix64(key) >> shift_; }

  std::vector<std::atomic<uint64_t>> keys_;
  std::vector<std::atomic<uint64_t>> values_;
  uint64_t mask_;
  uint32_t shift_;
};

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_CONCURRENT_HASH_TABLE_H_
