#ifndef HWSTAR_OPS_CONCURRENT_HASH_TABLE_H_
#define HWSTAR_OPS_CONCURRENT_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"

namespace hwstar::ops {

/// A lock-free-build open-addressing hash table: many threads insert
/// concurrently by claiming empty slots with compare-and-swap; after the
/// build completes, reads need no synchronization at all. This is how the
/// parallel no-partitioning join builds its single shared table -- the
/// "simple but synchronization-hungry" side of the design space the
/// radix join avoids by partitioning. Fixed capacity (sized up front),
/// duplicate keys allowed, no deletion.
class ConcurrentHashTable {
 public:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  /// Sizes for `expected` entries at `load_factor`.
  explicit ConcurrentHashTable(uint64_t expected, double load_factor = 0.5);

  ConcurrentHashTable(const ConcurrentHashTable&) = delete;
  ConcurrentHashTable& operator=(const ConcurrentHashTable&) = delete;

  /// Thread-safe insert (CAS slot claiming). Key ~0 is reserved. The
  /// caller must not insert more than `expected` entries (capacity is
  /// fixed); there is deliberately no shared insert counter -- a single
  /// atomic bumped by every thread would ping-pong its cache line and
  /// serialize the build (exactly the false-sharing cost E11 measures).
  void Insert(uint64_t key, uint64_t value);

  /// Counts entries matching `key`. Safe to call concurrently with other
  /// readers once all inserters have finished (or been synchronized-with).
  uint64_t CountMatches(uint64_t key) const;

  /// First matching value; false when absent. Same safety contract as
  /// CountMatches.
  bool Find(uint64_t key, uint64_t* value) const;

  /// Invokes fn(value) for every match; returns the match count. Same
  /// safety contract as CountMatches.
  uint32_t Probe(uint64_t key, const std::function<void(uint64_t)>& fn) const;

  uint64_t capacity() const { return mask_ + 1; }

  /// Occupied-slot count, by scanning (O(capacity)). A diagnostic, not a
  /// hot-path accessor; see the Insert comment for why there is no
  /// incrementally-maintained counter.
  uint64_t size() const;

 private:
  uint64_t HomeSlot(uint64_t key) const { return Mix64(key) >> shift_; }

  std::vector<std::atomic<uint64_t>> keys_;
  std::vector<std::atomic<uint64_t>> values_;
  uint64_t mask_;
  uint32_t shift_;
};

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_CONCURRENT_HASH_TABLE_H_
