#ifndef HWSTAR_OPS_ART_H_
#define HWSTAR_OPS_ART_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hwstar::sync {
class EpochManager;
}  // namespace hwstar::sync

namespace hwstar::ops {

/// The Adaptive Radix Tree (ART) of Leis et al. (ICDE 2013, the same
/// proceedings as the keynote): a 256-ary trie over the big-endian bytes
/// of the key whose inner nodes adapt among four physical layouts
/// (Node4/16/48/256) so that space stays bounded while every node fits in
/// a handful of cache lines. Combined with lazy expansion (leaves may sit
/// at any depth) and path compression (one-child chains collapse into a
/// per-node prefix), lookups touch O(key bytes) cache lines instead of
/// O(log n) dependent misses -- the hardware-conscious answer to the
/// binary search tree. Keys here are uint64, compared in numeric order.
///
/// Concurrency contract (optimistic lock coupling, Leis et al. DaMoN'16):
///  - Writers (Insert/Erase) must be externally serialized -- one writer
///    at a time (KvStore's shard latch provides this). Each node carries a
///    sync::OptLock; writers lock only the nodes they mutate in place, so
///    the lock never arbitrates between writers, it only signals readers.
///  - Find/FindBatch are latch-free and may run concurrently with the one
///    writer: they validate node versions and restart on interference,
///    never writing shared cache lines. Callers must hold a
///    sync::EpochManager::Guard (pin) across each call when an epoch
///    manager is attached; otherwise a racing Erase could free a node
///    mid-descent.
///  - Range scans, census, and MemoryBytes require writer exclusion (run
///    them under the same latch as writers); they are safe against
///    concurrent Find/FindBatch.
///  - With no epoch manager attached (the default), replaced nodes are
///    freed immediately and the tree behaves exactly like the pre-sync
///    single-threaded structure.
class AdaptiveRadixTree {
 public:
  AdaptiveRadixTree() = default;
  ~AdaptiveRadixTree();

  AdaptiveRadixTree(const AdaptiveRadixTree&) = delete;
  AdaptiveRadixTree& operator=(const AdaptiveRadixTree&) = delete;
  AdaptiveRadixTree(AdaptiveRadixTree&& other) noexcept;
  AdaptiveRadixTree& operator=(AdaptiveRadixTree&& other) noexcept;

  /// Inserts key->value; duplicate keys overwrite.
  void Insert(uint64_t key, uint64_t value);

  /// Point lookup; false when absent.
  bool Find(uint64_t key, uint64_t* value) const;

  /// Batched point lookups with interleaved descents: keys are processed
  /// in groups of `group_size` (0 = hw::DefaultProbeGroupSize); each
  /// round advances every still-descending key by one trie node and
  /// prefetches the next node, so up to G node misses are in flight while
  /// a scalar descent would hold exactly one. Results are bit-identical
  /// to per-key Find: values[i] = value or 0 on miss, found[i] = hit flag
  /// (skipped when `found` is null). Returns the number of hits. This is
  /// the kernel KvStore::MultiGet feeds same-shard runs through.
  size_t FindBatch(const uint64_t* keys, size_t n, uint64_t* values,
                   bool* found, uint32_t group_size = 0) const;

  /// Removes the key; false when absent. Freed paths collapse: an inner
  /// node left with a single child merges into that child (re-extending
  /// the compressed path), so a fully erased tree returns to its empty
  /// state. Node layouts never shrink kinds (an N256 stays an N256) —
  /// adaptivity is paid on growth, where it is amortized by inserts.
  bool Erase(uint64_t key);

  /// Appends values of all keys in [lo, hi] in ascending key order;
  /// returns the count.
  uint64_t RangeScan(uint64_t lo, uint64_t hi,
                     std::vector<uint64_t>* out) const;

  /// Appends (key, value) pairs for all keys in [lo, hi] in ascending key
  /// order; returns the count. Feeds checkpointing, which must persist
  /// keys, not just values.
  uint64_t RangeScanEntries(uint64_t lo, uint64_t hi,
                            std::vector<std::pair<uint64_t, uint64_t>>* out)
      const;

  uint64_t size() const { return size_; }

  /// Node-type census (diagnostics; shows the adaptivity at work).
  struct NodeCounts {
    uint64_t node4 = 0;
    uint64_t node16 = 0;
    uint64_t node48 = 0;
    uint64_t node256 = 0;
    uint64_t leaves = 0;
  };
  NodeCounts CountNodes() const;

  /// Approximate heap footprint in bytes.
  uint64_t MemoryBytes() const;

  /// Attaches an epoch-based reclamation domain: nodes unlinked by Insert
  /// growth or Erase are retired to `epoch` instead of freed immediately,
  /// which makes Find/FindBatch safe to run concurrently with the (single)
  /// writer. Null restores immediate frees (single-threaded mode). Must
  /// not be changed while operations are in flight.
  void SetEpochManager(sync::EpochManager* epoch) { epoch_ = epoch; }
  sync::EpochManager* epoch_manager() const { return epoch_; }

  /// Implementation detail (defined in art.cc); public only so internal
  /// helpers can name it.
  struct Node;

 private:
  std::atomic<Node*> root_{nullptr};
  uint64_t size_ = 0;
  sync::EpochManager* epoch_ = nullptr;
};

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_ART_H_
