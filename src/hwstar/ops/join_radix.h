#ifndef HWSTAR_OPS_JOIN_RADIX_H_
#define HWSTAR_OPS_JOIN_RADIX_H_

#include <cstdint>
#include <vector>

#include "hwstar/exec/executor.h"
#include "hwstar/ops/relation.h"

namespace hwstar::ops {

/// Options for the radix join.
struct RadixJoinOptions {
  uint32_t radix_bits = 10;   ///< total fan-out = 2^radix_bits partitions
  uint32_t num_passes = 1;    ///< 1 or 2 partitioning passes
  bool materialize = false;   ///< collect JoinPairs (else count only)
  double load_factor = 0.5;   ///< per-partition build table load factor
  exec::Executor* pool = nullptr;  ///< parallel per-partition join phase
  /// Stage tuples in cache-line-sized per-partition buffers during the
  /// scatter (software write combining); identical output, fewer
  /// TLB/fill-buffer stalls at high fan-out. Applies to 1-pass runs.
  bool buffered_scatter = false;
};

/// Detailed phase timing of a radix join run (seconds).
struct RadixJoinTiming {
  double partition_seconds = 0;
  double join_seconds = 0;
};

/// The hardware-conscious parallel radix join (PRO-style): both relations
/// are first range-partitioned by radix bits of the key hash so that each
/// co-partition's build side fits in cache (and, with 2-pass partitioning,
/// so that each pass's write fan-out stays within TLB reach). Per-partition
/// hash joins then run entirely cache-resident. This is the algorithm whose
/// superiority over the no-partitioning join -- published by the keynote's
/// author in the same ICDE 2013 proceedings -- anchors the paper's
/// "hardware still matters" argument; E2/A1 reproduce its shape.
JoinResult RadixHashJoin(const Relation& build, const Relation& probe,
                         const RadixJoinOptions& options = {},
                         RadixJoinTiming* timing = nullptr);

/// Internal building block, exposed for tests and benches: partitions a
/// relation into 2^radix_bits buckets by key hash (single pass). Outputs
/// the scattered relation and the bucket boundary offsets
/// (offsets[i]..offsets[i+1] is partition i; size 2^radix_bits + 1).
void RadixPartition(const Relation& input, uint32_t radix_bits,
                    uint32_t shift, Relation* output,
                    std::vector<uint64_t>* offsets);

/// Recommended radix bits so each build co-partition of `build_size` tuples
/// fits in a cache of `cache_bytes` (16 bytes/tuple plus the hash table).
uint32_t RecommendRadixBits(uint64_t build_size, uint64_t cache_bytes);

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_JOIN_RADIX_H_
