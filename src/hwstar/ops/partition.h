#ifndef HWSTAR_OPS_PARTITION_H_
#define HWSTAR_OPS_PARTITION_H_

#include <cstdint>
#include <vector>

#include "hwstar/ops/relation.h"

namespace hwstar::ops {

/// Software-managed-buffer radix partitioning: instead of scattering each
/// tuple directly to its partition cursor (touching one distinct output
/// cache line per tuple, which thrashes the TLB and fill buffers at high
/// fan-out), tuples are staged in small per-partition buffers sized to one
/// cache line and flushed in bursts. This is the optimization that makes
/// single-pass high-fan-out partitioning viable (Balkesen et al.'s
/// software write-combining); A1 compares it against the direct scatter.
/// Output is identical (stable within partitions) to RadixPartition.
void RadixPartitionBuffered(const Relation& input, uint32_t radix_bits,
                            uint32_t shift, Relation* output,
                            std::vector<uint64_t>* offsets);

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_PARTITION_H_
