#ifndef HWSTAR_OPS_BTREE_H_
#define HWSTAR_OPS_BTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "hwstar/common/status.h"

namespace hwstar::ops {

/// A main-memory B+-tree with wide, cache-line-multiple nodes. Wide nodes
/// trade more in-node comparisons (cheap: the node is in L1 after one miss)
/// for a shallower tree (fewer dependent cache misses) -- the canonical
/// cache-conscious index design the paper contrasts against
/// hardware-oblivious binary trees, whose every comparison is a potential
/// miss. E7 benchmarks it against binary search over a sorted array.
///
/// Concurrency contract (optimistic lock coupling + leaf right-links):
///  - Writers (Insert/Erase) must be externally serialized -- one writer
///    at a time (KvStore's shard latch provides this). Per-node OptLocks
///    only signal readers, never arbitrate between writers.
///  - Find/FindBatch are latch-free: version-validated descent, restart
///    on interference. A reader that lands on a leaf whose keys moved
///    right in a split the parent has not absorbed yet follows the leaf
///    chain (B-link style move-right); this works because splits only
///    move keys right and deletes never merge or rebalance nodes.
///  - No node is ever freed before tree destruction (splits add nodes,
///    Erase shrinks leaves in place), so the read path needs no epoch
///    reclamation -- destruction itself requires quiescence, as before.
///  - RangeScan/RangeScanEntries, height, and MemoryBytes require writer
///    exclusion (run them under the same latch as writers). The
///    *Optimistic scan variants are latch-free like Find: per-leaf
///    version-validated copy with restart, safe against one concurrent
///    writer.
class BPlusTree {
 public:
  /// `fanout`: max keys per node. 32 keys = 256B of keys = 4 cache lines.
  explicit BPlusTree(uint32_t fanout = 32);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  /// Inserts key->value; duplicate keys overwrite.
  void Insert(uint64_t key, uint64_t value);

  /// Point lookup; false when absent.
  bool Find(uint64_t key, uint64_t* value) const;

  /// Batched point lookups with level-synchronous group prefetching: the
  /// group of `group_size` keys (0 = hw::DefaultProbeGroupSize) descends
  /// the tree one level at a time; at each level every lane picks its
  /// child and prefetches the child node, then a second sweep prefetches
  /// each child's key array, so a whole group's next-level misses are in
  /// flight together (all leaves sit at the same depth, so lanes stay in
  /// lockstep). Results are bit-identical to per-key Find: values[i] =
  /// value or 0 on miss, found[i] = hit flag (skipped when `found` is
  /// null). Returns the number of hits. This is the kernel
  /// KvStore::MultiGet feeds same-shard runs through for kBTree stores.
  size_t FindBatch(const uint64_t* keys, size_t n, uint64_t* values,
                   bool* found, uint32_t group_size = 0) const;

  /// Removes the key from its leaf; false when absent. Leaves are not
  /// rebalanced or merged (deletes are rare in the target workloads and
  /// underfull leaves stay valid search/scan targets); inner separator
  /// keys may outlive the keys they were copied from, which is harmless —
  /// separators only route descent.
  bool Erase(uint64_t key);

  /// Appends all values with key in [lo, hi] to out; returns the count.
  uint64_t RangeScan(uint64_t lo, uint64_t hi,
                     std::vector<uint64_t>* out) const;

  /// Appends (key, value) pairs with key in [lo, hi] in ascending key
  /// order; returns the count. Feeds checkpointing, which must persist
  /// keys, not just values.
  uint64_t RangeScanEntries(uint64_t lo, uint64_t hi,
                            std::vector<std::pair<uint64_t, uint64_t>>* out)
      const;

  /// Latch-free range scan: never blocks (or is blocked by) the writer.
  /// Each leaf's in-range entries are copied to a scratch buffer and
  /// emitted only after the leaf version re-validates; a failed
  /// validation re-descends from just past the last emitted key, so
  /// output stays ascending and duplicate-free. Per-leaf atomicity only:
  /// a key present for the scan's whole duration is always reported, but
  /// entries from different leaves may straddle a concurrent writer's
  /// update (same contract as a latched scan racing writers between
  /// shard batches).
  uint64_t RangeScanOptimistic(uint64_t lo, uint64_t hi,
                               std::vector<uint64_t>* out) const;

  /// Entries flavor of RangeScanOptimistic (ascending (key, value) pairs).
  uint64_t RangeScanEntriesOptimistic(
      uint64_t lo, uint64_t hi,
      std::vector<std::pair<uint64_t, uint64_t>>* out) const;

  /// Bulk-loads from key-sorted pairs into a fresh tree (leaves packed to
  /// ~100% fill). Keys must be strictly increasing.
  static Result<BPlusTree> BulkLoad(const std::vector<uint64_t>& keys,
                                    const std::vector<uint64_t>& values,
                                    uint32_t fanout = 32);

  uint64_t size() const { return size_; }
  uint32_t height() const;
  uint64_t MemoryBytes() const;

 private:
  struct Node;
  struct SplitResult;

  Node* NewLeaf();
  Node* NewInner();
  void FreeTree(Node* n);
  SplitResult InsertRec(Node* n, uint64_t key, uint64_t value);
  const Node* FindLeaf(uint64_t key) const;
  template <typename Emit>
  uint64_t ScanOptimisticImpl(uint64_t lo, uint64_t hi, Emit emit) const;

  uint32_t fanout_;
  std::atomic<Node*> root_{nullptr};
  uint64_t size_ = 0;
  uint64_t node_count_ = 0;
};

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_BTREE_H_
