#ifndef HWSTAR_OPS_SORT_H_
#define HWSTAR_OPS_SORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hwstar/ops/relation.h"

namespace hwstar::ops {

/// LSB radix sort of uint64 values, 8 bits per pass (8 passes). O(n) data
/// movement in perfectly sequential streams -- the cache/prefetcher-friendly
/// sort -- versus the branch-and-compare traffic of comparison sorting.
void RadixSortU64(std::vector<uint64_t>* values);

/// Radix-sorts a relation by key, moving payloads along.
void RadixSortRelation(Relation* rel);

/// Radix sort that skips passes whose byte is constant across the input
/// (common for small key domains); same result as RadixSortU64.
void RadixSortU64Adaptive(std::vector<uint64_t>* values);

/// Cache-conscious merge sort: sorts runs of `run_size` elements in place
/// (insertion sort within L1-sized runs), then merges. Exposed with a
/// tunable run size for the sort ablation.
void MergeSortU64(std::vector<uint64_t>* values, size_t run_size = 64);

/// True when values are non-decreasing.
bool IsSortedU64(const std::vector<uint64_t>& values);

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_SORT_H_
