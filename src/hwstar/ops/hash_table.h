#ifndef HWSTAR_OPS_HASH_TABLE_H_
#define HWSTAR_OPS_HASH_TABLE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"

namespace hwstar::ops {

/// Open-addressing hash table with linear probing, 16-byte slots
/// (key+value), power-of-two capacity. Duplicate keys are supported
/// (each insert takes a slot); lookups visit the whole chain. The layout
/// choice -- one flat array, no pointers -- is the hardware-conscious one:
/// a probe touches one or two consecutive cache lines instead of chasing
/// a chain across the heap.
class LinearProbeTable {
 public:
  /// Sentinel marking an empty slot; the key value ~0 cannot be inserted.
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  /// `expected` entries at `load_factor` determine the capacity
  /// (power-of-two).
  explicit LinearProbeTable(uint64_t expected, double load_factor = 0.5);

  /// Inserts key->value; keys may repeat. No resizing (capacity is sized
  /// up front, as join builds know their input cardinality).
  void Insert(uint64_t key, uint64_t value);

  /// Invokes fn(value) for every entry matching key; returns match count.
  uint32_t Probe(uint64_t key, const std::function<void(uint64_t)>& fn) const;

  /// Counts matches without a callback. This is the join hot path: no
  /// statistics are recorded so it is safe to call concurrently from many
  /// probe threads (the table itself is read-only here).
  HWSTAR_ALWAYS_INLINE uint32_t CountMatches(uint64_t key) const {
    uint64_t slot = HomeSlot(key);
    uint32_t matches = 0;
    while (keys_[slot] != kEmpty) {
      matches += keys_[slot] == key;
      slot = (slot + 1) & mask_;
    }
    return matches;
  }

  /// Batch counting probe with software prefetching: the home slot of the
  /// key `distance` positions ahead is prefetched before the current key
  /// is processed, so independent misses overlap explicitly instead of
  /// relying on the out-of-order window (group prefetching / AMAC-lite).
  /// distance == 0 degenerates to a plain loop. Returns total matches.
  uint64_t CountMatchesBatch(const uint64_t* keys, uint64_t n,
                             uint32_t prefetch_distance = 8) const;

  /// Diagnostic: average probe chain length over a sample of keys.
  /// Single-threaded; does not perturb stats().
  double MeasureAvgProbeLength(const std::vector<uint64_t>& sample) const;

  /// Returns the first matching value through `out`; false when absent.
  bool Find(uint64_t key, uint64_t* out) const;

  uint64_t capacity() const { return mask_ + 1; }
  uint64_t size() const { return size_; }
  uint64_t MemoryBytes() const {
    return capacity() * (sizeof(uint64_t) * 2);
  }

 private:
  /// Home slot of a key: the HIGH bits of the hash. The radix join
  /// partitions by the LOW hash bits, so using the high bits here keeps
  /// slot placement independent of partition membership -- otherwise all
  /// keys of one partition would pile into a handful of slots.
  uint64_t HomeSlot(uint64_t key) const { return Mix64(key) >> shift_; }

  std::vector<uint64_t> keys_;
  std::vector<uint64_t> values_;
  uint64_t mask_;
  uint32_t shift_;
  uint64_t size_ = 0;
};

/// Chained (bucket + linked list) hash table: the textbook,
/// hardware-oblivious baseline. Every probe step dereferences a node
/// pointer, i.e., a dependent cache miss once out of cache.
class ChainedTable {
 public:
  explicit ChainedTable(uint64_t expected_buckets);

  void Insert(uint64_t key, uint64_t value);
  uint32_t Probe(uint64_t key, const std::function<void(uint64_t)>& fn) const;
  uint32_t CountMatches(uint64_t key) const;
  bool Find(uint64_t key, uint64_t* out) const;

  /// Diagnostic: average chain length over a sample of keys.
  double MeasureAvgProbeLength(const std::vector<uint64_t>& sample) const;

  uint64_t size() const { return size_; }
  uint64_t MemoryBytes() const;

 private:
  struct Node {
    uint64_t key;
    uint64_t value;
    int64_t next;  // index into nodes_, -1 terminates
  };

  /// High hash bits, for the same partition-independence reason as
  /// LinearProbeTable::HomeSlot.
  uint64_t HomeSlot(uint64_t key) const { return Mix64(key) >> shift_; }

  std::vector<int64_t> buckets_;  // head index or -1
  std::vector<Node> nodes_;
  uint64_t mask_;
  uint32_t shift_;
  uint64_t size_ = 0;
};

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_HASH_TABLE_H_
