#ifndef HWSTAR_OPS_HASH_TABLE_H_
#define HWSTAR_OPS_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"
#include "hwstar/ops/probe_kernels.h"
#include "hwstar/simd/kernels.h"

namespace hwstar::sync {
class EpochManager;
}  // namespace hwstar::sync

namespace hwstar::ops {

/// Open-addressing hash table with linear probing, 16-byte slots
/// (key+value), power-of-two capacity. Duplicate keys are supported
/// (each insert takes a slot); lookups visit the whole chain. The layout
/// choice -- one flat array, no pointers -- is the hardware-conscious one:
/// a probe touches one or two consecutive cache lines instead of chasing
/// a chain across the heap.
///
/// Concurrency contract (atomic publication): a single writer may Insert
/// concurrently with any number of readers. Insert stores the value, then
/// publishes the key with a release store; readers load keys with acquire,
/// so once a probe sees a key it sees that key's value. An in-progress
/// insert is simply invisible (its slot still reads kEmpty). There is no
/// resizing and no deletion, so no reclamation is needed; size() is
/// writer-side only. Multiple writers still require external serialization.
class LinearProbeTable {
 public:
  /// Sentinel marking an empty slot; the key value ~0 cannot be inserted.
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  /// `expected` entries at `load_factor` determine the capacity
  /// (power-of-two).
  explicit LinearProbeTable(uint64_t expected, double load_factor = 0.5);

  /// Inserts key->value; keys may repeat. No resizing (capacity is sized
  /// up front, as join builds know their input cardinality).
  void Insert(uint64_t key, uint64_t value);

  /// Invokes fn(value) for every entry matching key; returns match count.
  /// Templated on the callable so the per-key hot path inlines it -- a
  /// std::function here would cost an indirect call per match (measured
  /// in E2/A2 as a double-digit-percent probe tax).
  template <typename Fn>
  uint32_t Probe(uint64_t key, Fn&& fn) const {
    return WalkChainFrom(key, HomeSlot(key), [&](uint64_t slot) {
      fn(values_[slot].load(std::memory_order_relaxed));
      return true;
    });
  }

  /// Type-erased convenience overload for callers that already hold a
  /// std::function; forwards to the template above.
  uint32_t Probe(uint64_t key, const std::function<void(uint64_t)>& fn) const {
    return Probe<const std::function<void(uint64_t)>&>(key, fn);
  }

  /// Counts matches without a callback. This is the join hot path: no
  /// statistics are recorded so it is safe to call concurrently from many
  /// probe threads (the table itself is read-only here).
  HWSTAR_ALWAYS_INLINE uint32_t CountMatches(uint64_t key) const {
    return WalkChainFrom(key, HomeSlot(key),
                         [](uint64_t) { return true; });
  }

  /// Batch counting probe with *distance-pipelined* software prefetching:
  /// the home slot of the key `distance` positions ahead is prefetched
  /// before the current key is processed. This is the A6 ablation knob
  /// (sweeping the distance exposes the machine's miss-queue depth); the
  /// production batched kernels are FindBatch / ProbeBatch below, which
  /// use the group-prefetch discipline from probe_kernels.h instead of a
  /// tunable distance. distance == 0 degenerates to a plain loop.
  /// Returns total matches.
  uint64_t CountMatchesBatch(const uint64_t* keys, uint64_t n,
                             uint32_t prefetch_distance = 8) const;

  /// Diagnostic: average probe chain length over a sample of keys.
  /// Single-threaded; does not perturb stats().
  double MeasureAvgProbeLength(const std::vector<uint64_t>& sample) const;

  /// Returns the first matching value through `out`; false when absent.
  bool Find(uint64_t key, uint64_t* out) const;

  /// Batched Find with group prefetching: hashes keys in groups of
  /// `group_size` (0 = hw::DefaultProbeGroupSize, rounded to a compiled
  /// size), prefetches every group member's home slot, then probes the
  /// group -- so up to G misses overlap instead of serializing. Results
  /// are bit-identical to calling Find per key: values[i] gets the first
  /// matching value, or 0 on a miss; found[i] (skipped entirely when
  /// `found` is null) gets the hit flag. Returns the number of hits.
  /// Batches smaller than one group fall back to the scalar path.
  size_t FindBatch(const uint64_t* keys, size_t n, uint64_t* values,
                   bool* found, uint32_t group_size = 0) const;

  /// Batched full probe with group prefetching: invokes fn(i, value) for
  /// every entry matching keys[i], for each i in [0, n). Callbacks fire
  /// in the same order as a scalar `for i: Probe(keys[i], ...)` loop.
  /// Returns the total match count; with an empty fn the optimizer
  /// reduces this to a pure batched match counter (the join count path).
  template <typename Fn>
  uint64_t ProbeBatch(const uint64_t* keys, size_t n, Fn&& fn,
                      uint32_t group_size = 0) const {
    uint64_t matches = 0;
    WithProbeGroup(group_size, [&](auto g) {
      constexpr uint32_t G = decltype(g)::value;
      const simd::Backend be = simd::ActiveBackend();
      uint64_t slots[G];
      // Explicit group loop: the whole group's hash phase is one
      // data-parallel Mix64Batch sweep, then G prefetches issue, then
      // the probe phase walks each chain against lines already in
      // flight (and skips non-matching runs with vector compares).
      size_t i = 0;
      for (; i + G <= n; i += G) {
        simd::Mix64Batch(be, keys + i, G, slots);
        for (uint32_t lane = 0; lane < G; ++lane) {
          slots[lane] >>= shift_;
          HWSTAR_PREFETCH(&keys_[slots[lane]]);
          HWSTAR_PREFETCH(&values_[slots[lane]]);
        }
        for (uint32_t lane = 0; lane < G; ++lane) {
          const size_t idx = i + lane;
          matches += WalkChainFrom(keys[idx], slots[lane], [&](uint64_t s) {
            fn(idx, values_[s].load(std::memory_order_relaxed));
            return true;
          });
        }
      }
      for (; i < n; ++i) {
        matches += Probe(keys[i], [&](uint64_t value) { fn(i, value); });
      }
    });
    return matches;
  }

  uint64_t capacity() const { return mask_ + 1; }
  uint64_t size() const { return size_; }
  uint64_t MemoryBytes() const {
    return capacity() * (sizeof(uint64_t) * 2);
  }

 private:
  /// Home slot of a key: the HIGH bits of the hash. The radix join
  /// partitions by the LOW hash bits, so using the high bits here keeps
  /// slot placement independent of partition membership -- otherwise all
  /// keys of one partition would pile into a handful of slots.
  uint64_t HomeSlot(uint64_t key) const { return Mix64(key) >> shift_; }

  /// Walks the probe chain of `key` from `slot`, calling visit(slot) on
  /// every match until visit returns false or the chain's terminating
  /// empty slot is reached; returns the match count.
  ///
  /// On a vector backend, simd::FindKeyOrEmpty skips runs of
  /// non-interesting slots with plain (unsynchronized) vector loads.
  /// That is safe as an *accelerator hint*: a slot it skips was observed
  /// non-empty and non-matching, and published keys are immutable (the
  /// only write a slot ever sees is its one kEmpty -> key release store,
  /// 64-bit aligned, so a plain load observes one of the two values) --
  /// a skipped slot therefore can never have matched. Every slot the
  /// hint *nominates* is re-read through the acquire protocol, which
  /// stays the sole authority for termination, matches, and the
  /// key->value ordering. A racing publication can make the hint stop
  /// early on a slot acquire then disagrees about; the loop steps one
  /// slot scalar and re-engages the vector scan. The kernel never scans
  /// past the array edge (span = capacity - slot), so a wrapping chain
  /// re-enters at slot 0 -- no out-of-bounds vector load. The scalar
  /// backend (always selected under TSan, where plain loads of the
  /// atomics would be miscounted as races) is the original acquire-load
  /// loop, untouched.
  template <typename Visit>
  HWSTAR_ALWAYS_INLINE uint32_t WalkChainFrom(uint64_t key, uint64_t slot,
                                              Visit&& visit) const {
    uint32_t matches = 0;
    const simd::Backend be = simd::ActiveBackend();
    if (be == simd::Backend::kScalar) {
      for (;;) {
        const uint64_t k = keys_[slot].load(std::memory_order_acquire);
        if (k == kEmpty) return matches;
        if (k == key) {
          ++matches;
          if (!visit(slot)) return matches;
        }
        slot = (slot + 1) & mask_;
      }
    }
    static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t));
    const uint64_t* raw = reinterpret_cast<const uint64_t*>(keys_.get());
    const uint64_t cap = mask_ + 1;
    for (;;) {
      const size_t span = static_cast<size_t>(cap - slot);
      const size_t idx = simd::FindKeyOrEmpty(be, raw + slot, span, key,
                                              kEmpty);
      if (idx == span) {  // hit the array edge without a candidate: wrap
        slot = 0;
        continue;
      }
      slot += idx;
      const uint64_t k = keys_[slot].load(std::memory_order_acquire);
      if (k == kEmpty) return matches;
      if (k == key) {
        ++matches;
        if (!visit(slot)) return matches;
      }
      // Match, or a racing insert made the hint stop where acquire
      // disagrees: either way, resume the vector scan one slot on.
      slot = (slot + 1) & mask_;
    }
  }

  std::unique_ptr<std::atomic<uint64_t>[]> keys_;
  std::unique_ptr<std::atomic<uint64_t>[]> values_;
  uint64_t mask_;
  uint32_t shift_;
  uint64_t size_ = 0;
};

/// Chained (bucket + linked list) hash table: the textbook,
/// hardware-oblivious baseline. Every probe step dereferences a node
/// pointer, i.e., a dependent cache miss once out of cache. The batched
/// lookups below are the AMAC counterexample: even this layout recovers
/// memory-level parallelism when K walks are interleaved explicitly.
///
/// Concurrency contract (atomic publication + epoch-retired node blocks):
/// a single writer may Insert concurrently with readers. Inserts prepend:
/// the node is filled in privately, then the bucket head is published with
/// a release store, so a node's fields are immutable once reachable and
/// chain indices strictly decrease along any chain. Nodes live in one
/// NodeBlock array; growth copies into a double-size block, publishes the
/// block pointer (release) BEFORE any head that refers to the new range,
/// and retires the old block to the attached sync::EpochManager (or frees
/// it immediately when none is attached -- single-threaded mode, matching
/// the old vector-realloc semantics). Readers that see a head index beyond
/// their block snapshot reload the block pointer once, which is guaranteed
/// sufficient. With an epoch manager attached, concurrent readers must
/// hold a sync::EpochManager::Guard across each probe. Multiple writers
/// still require external serialization.
class ChainedTable {
 public:
  explicit ChainedTable(uint64_t expected_buckets);
  ~ChainedTable();

  ChainedTable(const ChainedTable&) = delete;
  ChainedTable& operator=(const ChainedTable&) = delete;

  void Insert(uint64_t key, uint64_t value);

  /// Attaches an epoch-based reclamation domain: node blocks replaced by
  /// growth are retired to `epoch` instead of freed immediately, which
  /// makes concurrent probes safe against growth. Null restores immediate
  /// frees. Must not be changed while operations are in flight.
  void SetEpochManager(sync::EpochManager* epoch) { epoch_ = epoch; }
  sync::EpochManager* epoch_manager() const { return epoch_; }

  /// Invokes fn(value) for every match; returns the match count.
  /// Templated for the same per-key inlining reason as
  /// LinearProbeTable::Probe.
  template <typename Fn>
  uint32_t Probe(uint64_t key, Fn&& fn) const {
    return ProbeAtBucket(HomeSlot(key), key, std::forward<Fn>(fn));
  }

  /// Type-erased convenience overload; forwards to the template above.
  uint32_t Probe(uint64_t key, const std::function<void(uint64_t)>& fn) const {
    return Probe<const std::function<void(uint64_t)>&>(key, fn);
  }

  uint32_t CountMatches(uint64_t key) const;
  bool Find(uint64_t key, uint64_t* out) const;

  /// Below the footprint gate the table is (almost) cache-resident, chain
  /// steps hit, and the AMAC ring's state shuffling is pure overhead
  /// (E18 measured up to ~2x slowdown on an L1-resident table). FindBatch
  /// and ProbeBatch degrade to the scalar walk under it -- the paper's
  /// discipline: the right code depends on where the data lands in the
  /// hierarchy, so the kernel checks. The live gate is the
  /// tune::AmacMinTableBytes knob (read per batch via
  /// hw::DefaultAmacMinTableBytes): hw::MachineModel::FromHost derives it
  /// from the discovered cache hierarchy and the tune::Calibrator
  /// re-measures the crossover; this constant is only that knob's spec
  /// default, kept for tests that size tables relative to it.
  static constexpr uint64_t kAmacMinTableBytes = 2u << 20;

  /// Batched Find via AMAC: a ring of `group_size` in-flight bucket walks
  /// (each stage prefetches its next node and yields), so chained misses
  /// overlap across keys even though each chain is serial. Bit-identical
  /// to per-key Find: values[i] = first match or 0, found[i] = hit flag
  /// (skipped when `found` is null). Returns the number of hits.
  /// group_size 0 = auto: tables under the footprint gate take the
  /// scalar walk and the rest read the calibrated tune::AmacRingWidth
  /// knob; an explicit nonzero width forces the ring regardless of
  /// footprint (Calibrator trials, pinned bench arms).
  size_t FindBatch(const uint64_t* keys, size_t n, uint64_t* values,
                   bool* found, uint32_t group_size = 0) const;

  /// Batched full probe via AMAC: fn(i, value) for every node matching
  /// keys[i]. Keys complete out of order (the ring interleaves walks), so
  /// callback order is unspecified across keys; within one key, matches
  /// arrive in chain order. Returns the total match count. With
  /// group_size 0, tables under the footprint gate take the scalar walk
  /// (in order) instead; a nonzero width forces the ring.
  template <typename Fn>
  uint64_t ProbeBatch(const uint64_t* keys, size_t n, Fn&& fn,
                      uint32_t group_size = 0) const {
    uint64_t matches = 0;
    if (group_size == 0) {
      // Same auto-vs-forced split as FindBatch: the footprint gate only
      // arbitrates when the caller left the width to policy.
      if (MemoryBytes() < hw::DefaultAmacMinTableBytes()) {
        // Cache-resident walk: chain steps hit, so the remaining cost is
        // compute -- chunk the hash phase through Mix64Batch so at least
        // the hashing runs data-parallel.
        const simd::Backend be = simd::ActiveBackend();
        constexpr size_t kChunk = 256;
        uint64_t buckets[kChunk];
        for (size_t base = 0; base < n; base += kChunk) {
          const size_t m = n - base < kChunk ? n - base : kChunk;
          simd::Mix64Batch(be, keys + base, m, buckets);
          for (size_t j = 0; j < m; ++j) {
            const size_t i = base + j;
            matches += ProbeAtBucket(buckets[j] >> shift_, keys[i],
                                     [&](uint64_t value) { fn(i, value); });
          }
        }
        return matches;
      }
      group_size = hw::DefaultAmacRingWidth();
    }
    WithProbeGroup(group_size, [&](auto g) {
      constexpr uint32_t K = decltype(g)::value;
      struct Job {
        struct State {
          uint64_t key;
          size_t i;
          uint64_t bucket;
          int64_t node;
          bool at_bucket;
        };
        const ChainedTable* table;
        const NodeBlock* blk;
        Fn* fn;
        uint64_t* matches;
        const uint64_t* keys;

        void Start(State& st, size_t i) {
          st.key = keys[i];
          st.i = i;
          st.bucket = table->HomeSlot(st.key);
          st.at_bucket = true;
          HWSTAR_PREFETCH(&table->buckets_[st.bucket]);
        }
        bool Step(State& st) {
          if (st.at_bucket) {
            st.node =
                table->buckets_[st.bucket].load(std::memory_order_acquire);
            st.at_bucket = false;
            if (st.node < 0) return false;
            blk = table->Resnapshot(blk, st.node);
            HWSTAR_PREFETCH(&blk->nodes[static_cast<size_t>(st.node)]);
            return true;
          }
          const Node& node = blk->nodes[static_cast<size_t>(st.node)];
          if (node.key == st.key) {
            (*fn)(st.i, node.value);
            ++*matches;
          }
          st.node = node.next;
          if (st.node < 0) return false;
          HWSTAR_PREFETCH(&blk->nodes[static_cast<size_t>(st.node)]);
          return true;
        }
      };
      Job job{this, block_.load(std::memory_order_acquire), &fn, &matches,
              keys};
      AmacLoop<K>(n, job);
    });
    return matches;
  }

  /// Diagnostic: average chain length over a sample of keys.
  double MeasureAvgProbeLength(const std::vector<uint64_t>& sample) const;

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }
  uint64_t MemoryBytes() const;

 private:
  struct Node {
    uint64_t key;
    uint64_t value;
    int64_t next;  // index into the node block, -1 terminates
  };

  /// One contiguous node array. Fields are immutable after the block is
  /// published; growth replaces the whole block.
  struct NodeBlock {
    explicit NodeBlock(uint64_t cap) : capacity(cap), nodes(new Node[cap]) {}
    const uint64_t capacity;
    const std::unique_ptr<Node[]> nodes;
  };

  /// A head index at or beyond the snapshot's capacity means the snapshot
  /// predates the growth that made room for that node; the writer
  /// publishes the grown block before any such head, so one reload
  /// (ordered after the head load that exposed the index) must observe a
  /// block large enough. Chain `next` indices strictly decrease, so only
  /// the head can ever be out of range.
  const NodeBlock* Resnapshot(const NodeBlock* blk, int64_t head) const {
    if (head >= 0 && static_cast<uint64_t>(head) >= blk->capacity) {
      blk = block_.load(std::memory_order_acquire);
    }
    return blk;
  }

  NodeBlock* Grow(NodeBlock* old);

  /// Probe body starting from an already-computed bucket index, so the
  /// batched paths can hash whole chunks through simd::Mix64Batch and
  /// feed the buckets in.
  template <typename Fn>
  uint32_t ProbeAtBucket(uint64_t b, uint64_t key, Fn&& fn) const {
    const NodeBlock* blk = block_.load(std::memory_order_acquire);
    int64_t n = buckets_[b].load(std::memory_order_acquire);
    blk = Resnapshot(blk, n);
    uint32_t matches = 0;
    while (n >= 0) {
      const Node& node = blk->nodes[static_cast<size_t>(n)];
      if (node.key == key) {
        fn(node.value);
        ++matches;
      }
      n = node.next;
    }
    return matches;
  }

  /// Find body starting from an already-computed bucket index (see
  /// ProbeAtBucket); defined in the .cc next to Find.
  bool FindAtBucket(uint64_t b, uint64_t key, uint64_t* out) const;

  /// High hash bits, for the same partition-independence reason as
  /// LinearProbeTable::HomeSlot.
  uint64_t HomeSlot(uint64_t key) const { return Mix64(key) >> shift_; }

  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  // head index or -1
  std::atomic<NodeBlock*> block_;
  uint64_t mask_;
  uint32_t shift_;
  std::atomic<uint64_t> size_{0};
  sync::EpochManager* epoch_ = nullptr;
};

}  // namespace hwstar::ops

#endif  // HWSTAR_OPS_HASH_TABLE_H_
