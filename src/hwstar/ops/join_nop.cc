#include "hwstar/ops/join_nop.h"

#include <atomic>
#include <memory>
#include <mutex>

#include "hwstar/exec/morsel.h"
#include "hwstar/ops/bloom_filter.h"
#include "hwstar/ops/concurrent_hash_table.h"

namespace hwstar::ops {

namespace {

/// Bloom pre-filter chunk width: big enough to amortize the compaction
/// loop, small enough that the scratch arrays live comfortably on the
/// worker's stack (and in its L1).
constexpr size_t kProbeChunk = 256;

/// Shared probe driver over any table with a batched ProbeBatch kernel.
/// `bloom` (optional) rejects definite non-matches before the table is
/// touched; survivors are compacted and fed to the table's batched probe
/// so a chunk's table misses stay in flight together (probe_kernels.h).
/// With a ChainedTable the batch kernel is AMAC, which completes keys out
/// of order, so pair output order is unspecified (matches are a multiset).
template <typename Table>
JoinResult ProbeAll(const Table& table, const Relation& probe,
                    const NoPartitionJoinOptions& options,
                    const BlockedBloomFilter* bloom) {
  JoinResult result;
  const uint64_t n = probe.size();

  // Probes rows [begin, end); accumulates into *matches and (when
  // materializing) *pairs. Shared by the serial and morsel-parallel paths.
  auto probe_range = [&](uint64_t begin, uint64_t end, uint64_t* matches,
                         std::vector<JoinPair>* pairs) {
    const uint64_t* keys = probe.keys.data();
    if (bloom == nullptr) {
      if (pairs != nullptr) {
        *matches += table.ProbeBatch(
            keys + begin, end - begin, [&](size_t j, uint64_t build_payload) {
              pairs->push_back(
                  JoinPair{build_payload, probe.payloads[begin + j]});
            });
      } else {
        *matches +=
            table.ProbeBatch(keys + begin, end - begin, [](size_t, uint64_t) {});
      }
      return;
    }
    // Bloom pre-filter a chunk at a time, compact the survivors (keeping
    // their original row ids for payload lookup), then batch-probe them.
    bool may[kProbeChunk];
    uint64_t pass_keys[kProbeChunk];
    uint64_t pass_rows[kProbeChunk];
    for (uint64_t base = begin; base < end; base += kProbeChunk) {
      const size_t m =
          static_cast<size_t>(end - base < kProbeChunk ? end - base
                                                       : kProbeChunk);
      bloom->MayContainBatch(keys + base, m, may);
      size_t live = 0;
      for (size_t j = 0; j < m; ++j) {
        if (!may[j]) continue;
        pass_keys[live] = keys[base + j];
        pass_rows[live] = base + j;
        ++live;
      }
      if (live == 0) continue;
      if (pairs != nullptr) {
        *matches += table.ProbeBatch(
            pass_keys, live, [&](size_t j, uint64_t build_payload) {
              pairs->push_back(
                  JoinPair{build_payload, probe.payloads[pass_rows[j]]});
            });
      } else {
        *matches += table.ProbeBatch(pass_keys, live, [](size_t, uint64_t) {});
      }
    }
  };

  if (options.pool == nullptr) {
    probe_range(0, n, &result.matches,
                options.materialize ? &result.pairs : nullptr);
    return result;
  }

  // Parallel probe: the table is read-only, so workers only synchronize on
  // output.
  std::atomic<uint64_t> matches{0};
  std::mutex pairs_mutex;
  exec::ParallelForMorsels(
      options.pool, n, exec::DefaultMorselRows(),
      [&](uint32_t /*worker*/, exec::Morsel m) {
        uint64_t local_matches = 0;
        std::vector<JoinPair> local_pairs;
        probe_range(m.begin, m.end, &local_matches,
                    options.materialize ? &local_pairs : nullptr);
        matches.fetch_add(local_matches, std::memory_order_relaxed);
        if (!local_pairs.empty()) {
          std::lock_guard<std::mutex> lock(pairs_mutex);
          result.pairs.insert(result.pairs.end(), local_pairs.begin(),
                              local_pairs.end());
        }
      });
  result.matches = matches.load(std::memory_order_relaxed);
  return result;
}

}  // namespace

JoinResult NoPartitionHashJoin(const Relation& build, const Relation& probe,
                               const NoPartitionJoinOptions& options) {
  std::unique_ptr<BlockedBloomFilter> bloom;
  if (options.use_bloom) {
    bloom = std::make_unique<BlockedBloomFilter>(build.size(),
                                                 options.bloom_bits_per_key);
    // The Bloom filter is not thread-safe; populate it up front.
    for (uint64_t i = 0; i < build.size(); ++i) bloom->Add(build.keys[i]);
  }

  if (options.parallel_build && options.pool != nullptr) {
    ConcurrentHashTable table(build.size(), options.load_factor);
    exec::ParallelForMorsels(
        options.pool, build.size(), exec::DefaultMorselRows(),
        [&](uint32_t /*worker*/, exec::Morsel m) {
          for (uint64_t i = m.begin; i < m.end; ++i) {
            table.Insert(build.keys[i], build.payloads[i]);
          }
        });
    return ProbeAll(table, probe, options, bloom.get());
  }

  LinearProbeTable table(build.size(), options.load_factor);
  for (uint64_t i = 0; i < build.size(); ++i) {
    table.Insert(build.keys[i], build.payloads[i]);
  }
  return ProbeAll(table, probe, options, bloom.get());
}

JoinResult NoPartitionChainedJoin(const Relation& build, const Relation& probe,
                                  const NoPartitionJoinOptions& options) {
  ChainedTable table(build.size());
  std::unique_ptr<BlockedBloomFilter> bloom;
  if (options.use_bloom) {
    bloom = std::make_unique<BlockedBloomFilter>(build.size(),
                                                 options.bloom_bits_per_key);
  }
  for (uint64_t i = 0; i < build.size(); ++i) {
    table.Insert(build.keys[i], build.payloads[i]);
    if (bloom) bloom->Add(build.keys[i]);
  }
  return ProbeAll(table, probe, options, bloom.get());
}

}  // namespace hwstar::ops
