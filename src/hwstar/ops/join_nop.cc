#include "hwstar/ops/join_nop.h"

#include <atomic>
#include <memory>
#include <mutex>

#include "hwstar/exec/morsel.h"
#include "hwstar/ops/bloom_filter.h"
#include "hwstar/ops/concurrent_hash_table.h"

namespace hwstar::ops {

namespace {

/// Shared probe driver over any table with CountMatches/Probe. `bloom`
/// (optional) rejects definite non-matches before the table is touched.
template <typename Table>
JoinResult ProbeAll(const Table& table, const Relation& probe,
                    const NoPartitionJoinOptions& options,
                    const BlockedBloomFilter* bloom) {
  JoinResult result;
  const uint64_t n = probe.size();
  if (options.pool == nullptr) {
    if (options.materialize) {
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t key = probe.keys[i];
        if (bloom != nullptr && !bloom->MayContain(key)) continue;
        const uint64_t payload = probe.payloads[i];
        result.matches += table.Probe(key, [&](uint64_t build_payload) {
          result.pairs.push_back(JoinPair{build_payload, payload});
        });
      }
    } else {
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t key = probe.keys[i];
        if (bloom != nullptr && !bloom->MayContain(key)) continue;
        result.matches += table.CountMatches(key);
      }
    }
    return result;
  }

  // Parallel probe: the table is read-only, so workers only synchronize on
  // output.
  std::atomic<uint64_t> matches{0};
  std::mutex pairs_mutex;
  exec::ParallelForMorsels(
      options.pool, n, exec::kDefaultMorselRows,
      [&](uint32_t /*worker*/, exec::Morsel m) {
        uint64_t local_matches = 0;
        std::vector<JoinPair> local_pairs;
        for (uint64_t i = m.begin; i < m.end; ++i) {
          const uint64_t key = probe.keys[i];
          if (bloom != nullptr && !bloom->MayContain(key)) continue;
          if (options.materialize) {
            const uint64_t payload = probe.payloads[i];
            local_matches += table.Probe(key, [&](uint64_t build_payload) {
              local_pairs.push_back(JoinPair{build_payload, payload});
            });
          } else {
            local_matches += table.CountMatches(key);
          }
        }
        matches.fetch_add(local_matches, std::memory_order_relaxed);
        if (!local_pairs.empty()) {
          std::lock_guard<std::mutex> lock(pairs_mutex);
          result.pairs.insert(result.pairs.end(), local_pairs.begin(),
                              local_pairs.end());
        }
      });
  result.matches = matches.load(std::memory_order_relaxed);
  return result;
}

}  // namespace

JoinResult NoPartitionHashJoin(const Relation& build, const Relation& probe,
                               const NoPartitionJoinOptions& options) {
  std::unique_ptr<BlockedBloomFilter> bloom;
  if (options.use_bloom) {
    bloom = std::make_unique<BlockedBloomFilter>(build.size(),
                                                 options.bloom_bits_per_key);
    // The Bloom filter is not thread-safe; populate it up front.
    for (uint64_t i = 0; i < build.size(); ++i) bloom->Add(build.keys[i]);
  }

  if (options.parallel_build && options.pool != nullptr) {
    ConcurrentHashTable table(build.size(), options.load_factor);
    exec::ParallelForMorsels(
        options.pool, build.size(), exec::kDefaultMorselRows,
        [&](uint32_t /*worker*/, exec::Morsel m) {
          for (uint64_t i = m.begin; i < m.end; ++i) {
            table.Insert(build.keys[i], build.payloads[i]);
          }
        });
    return ProbeAll(table, probe, options, bloom.get());
  }

  LinearProbeTable table(build.size(), options.load_factor);
  for (uint64_t i = 0; i < build.size(); ++i) {
    table.Insert(build.keys[i], build.payloads[i]);
  }
  return ProbeAll(table, probe, options, bloom.get());
}

JoinResult NoPartitionChainedJoin(const Relation& build, const Relation& probe,
                                  const NoPartitionJoinOptions& options) {
  ChainedTable table(build.size());
  std::unique_ptr<BlockedBloomFilter> bloom;
  if (options.use_bloom) {
    bloom = std::make_unique<BlockedBloomFilter>(build.size(),
                                                 options.bloom_bits_per_key);
  }
  for (uint64_t i = 0; i < build.size(); ++i) {
    table.Insert(build.keys[i], build.payloads[i]);
    if (bloom) bloom->Add(build.keys[i]);
  }
  return ProbeAll(table, probe, options, bloom.get());
}

}  // namespace hwstar::ops
