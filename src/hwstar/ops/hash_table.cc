#include "hwstar/ops/hash_table.h"

#include "hwstar/common/bits.h"

namespace hwstar::ops {

LinearProbeTable::LinearProbeTable(uint64_t expected, double load_factor) {
  HWSTAR_CHECK(load_factor > 0.0 && load_factor < 1.0);
  uint64_t min_cap = static_cast<uint64_t>(
      static_cast<double>(expected < 1 ? 1 : expected) / load_factor);
  uint64_t cap = bits::NextPowerOfTwo(min_cap < 8 ? 8 : min_cap);
  keys_.assign(cap, kEmpty);
  values_.assign(cap, 0);
  mask_ = cap - 1;
  shift_ = 64 - bits::Log2Floor(cap);
}

void LinearProbeTable::Insert(uint64_t key, uint64_t value) {
  HWSTAR_DCHECK(key != kEmpty);
  HWSTAR_CHECK(size_ < capacity());  // table never fills completely
  uint64_t slot = HomeSlot(key);
  while (keys_[slot] != kEmpty) {
    slot = (slot + 1) & mask_;
  }
  keys_[slot] = key;
  values_[slot] = value;
  ++size_;
}

bool LinearProbeTable::Find(uint64_t key, uint64_t* out) const {
  uint64_t slot = HomeSlot(key);
  while (keys_[slot] != kEmpty) {
    if (keys_[slot] == key) {
      *out = values_[slot];
      return true;
    }
    slot = (slot + 1) & mask_;
  }
  return false;
}

size_t LinearProbeTable::FindBatch(const uint64_t* keys, size_t n,
                                   uint64_t* values, bool* found,
                                   uint32_t group_size) const {
  size_t hits = 0;
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t G = decltype(g)::value;
    if (n < G) {
      // Tiny batch: the scalar path, with no staging overhead.
      for (size_t i = 0; i < n; ++i) {
        uint64_t value = 0;
        const bool hit = Find(keys[i], &value);
        values[i] = hit ? value : 0;
        if (found != nullptr) found[i] = hit;
        hits += hit;
      }
      return;
    }
    uint64_t slots[G];
    GroupPrefetchLoop<G>(
        n,
        [&](uint32_t lane, size_t i) {
          const uint64_t slot = HomeSlot(keys[i]);
          slots[lane] = slot;
          HWSTAR_PREFETCH(&keys_[slot]);
          HWSTAR_PREFETCH(&values_[slot]);
        },
        [&](uint32_t lane, size_t i) {
          const uint64_t key = keys[i];
          uint64_t slot = slots[lane];
          uint64_t value = 0;
          bool hit = false;
          while (keys_[slot] != kEmpty) {
            if (keys_[slot] == key) {
              value = values_[slot];
              hit = true;
              break;
            }
            slot = (slot + 1) & mask_;
          }
          values[i] = value;
          if (found != nullptr) found[i] = hit;
          hits += hit;
        });
  });
  return hits;
}

uint64_t LinearProbeTable::CountMatchesBatch(const uint64_t* keys, uint64_t n,
                                             uint32_t prefetch_distance) const {
  uint64_t matches = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (prefetch_distance != 0 && i + prefetch_distance < n) {
      const uint64_t ahead = HomeSlot(keys[i + prefetch_distance]);
      HWSTAR_PREFETCH(&keys_[ahead]);
    }
    matches += CountMatches(keys[i]);
  }
  return matches;
}

double LinearProbeTable::MeasureAvgProbeLength(
    const std::vector<uint64_t>& sample) const {
  if (sample.empty()) return 0.0;
  uint64_t steps = 0;
  for (uint64_t key : sample) {
    uint64_t slot = HomeSlot(key);
    while (keys_[slot] != kEmpty) {
      ++steps;
      slot = (slot + 1) & mask_;
    }
    ++steps;  // terminating empty slot
  }
  return static_cast<double>(steps) / static_cast<double>(sample.size());
}

ChainedTable::ChainedTable(uint64_t expected_buckets) {
  uint64_t cap =
      bits::NextPowerOfTwo(expected_buckets < 8 ? 8 : expected_buckets);
  buckets_.assign(cap, -1);
  mask_ = cap - 1;
  shift_ = 64 - bits::Log2Floor(cap);
}

void ChainedTable::Insert(uint64_t key, uint64_t value) {
  uint64_t b = HomeSlot(key);
  nodes_.push_back(Node{key, value, buckets_[b]});
  buckets_[b] = static_cast<int64_t>(nodes_.size() - 1);
  ++size_;
}

uint32_t ChainedTable::CountMatches(uint64_t key) const {
  uint64_t b = HomeSlot(key);
  uint32_t matches = 0;
  for (int64_t n = buckets_[b]; n >= 0;
       n = nodes_[static_cast<size_t>(n)].next) {
    matches += nodes_[static_cast<size_t>(n)].key == key;
  }
  return matches;
}

bool ChainedTable::Find(uint64_t key, uint64_t* out) const {
  uint64_t b = HomeSlot(key);
  for (int64_t n = buckets_[b]; n >= 0;
       n = nodes_[static_cast<size_t>(n)].next) {
    const Node& node = nodes_[static_cast<size_t>(n)];
    if (node.key == key) {
      *out = node.value;
      return true;
    }
  }
  return false;
}

size_t ChainedTable::FindBatch(const uint64_t* keys, size_t n,
                               uint64_t* values, bool* found,
                               uint32_t group_size) const {
  size_t hits = 0;
  if (MemoryBytes() < kAmacMinTableBytes) {
    // Cache-resident table: the ring would only add overhead (see the
    // kAmacMinTableBytes comment in the header).
    for (size_t i = 0; i < n; ++i) {
      uint64_t value = 0;
      const bool hit = Find(keys[i], &value);
      values[i] = hit ? value : 0;
      if (found != nullptr) found[i] = hit;
      hits += hit;
    }
    return hits;
  }
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t K = decltype(g)::value;
    if (n < K) {
      for (size_t i = 0; i < n; ++i) {
        uint64_t value = 0;
        const bool hit = Find(keys[i], &value);
        values[i] = hit ? value : 0;
        if (found != nullptr) found[i] = hit;
        hits += hit;
      }
      return;
    }
    // AMAC walk: stage 0 prefetches the bucket head, each later stage
    // inspects one node and prefetches the next, stopping at the first
    // match (Find semantics).
    struct Job {
      struct State {
        uint64_t key;
        size_t i;
        uint64_t bucket;
        int64_t node;
        bool at_bucket;
      };
      const ChainedTable* table;
      uint64_t* values;
      bool* found;
      size_t* hits;
      const uint64_t* keys;

      void Finish(State& st, uint64_t value, bool hit) const {
        values[st.i] = value;
        if (found != nullptr) found[st.i] = hit;
        *hits += hit;
      }
      void Start(State& st, size_t i) {
        st.key = keys[i];
        st.i = i;
        st.bucket = table->HomeSlot(st.key);
        st.at_bucket = true;
        HWSTAR_PREFETCH(&table->buckets_[st.bucket]);
      }
      bool Step(State& st) {
        if (st.at_bucket) {
          st.node = table->buckets_[st.bucket];
          st.at_bucket = false;
          if (st.node < 0) {
            Finish(st, 0, false);
            return false;
          }
          HWSTAR_PREFETCH(&table->nodes_[static_cast<size_t>(st.node)]);
          return true;
        }
        const Node& node = table->nodes_[static_cast<size_t>(st.node)];
        if (node.key == st.key) {
          Finish(st, node.value, true);
          return false;
        }
        st.node = node.next;
        if (st.node < 0) {
          Finish(st, 0, false);
          return false;
        }
        HWSTAR_PREFETCH(&table->nodes_[static_cast<size_t>(st.node)]);
        return true;
      }
    };
    Job job{this, values, found, &hits, keys};
    AmacLoop<K>(n, job);
  });
  return hits;
}

double ChainedTable::MeasureAvgProbeLength(
    const std::vector<uint64_t>& sample) const {
  if (sample.empty()) return 0.0;
  uint64_t steps = 0;
  for (uint64_t key : sample) {
    uint64_t b = HomeSlot(key);
    for (int64_t n = buckets_[b]; n >= 0;
         n = nodes_[static_cast<size_t>(n)].next) {
      ++steps;
    }
    ++steps;  // bucket-head inspection
  }
  return static_cast<double>(steps) / static_cast<double>(sample.size());
}

uint64_t ChainedTable::MemoryBytes() const {
  return buckets_.size() * sizeof(int64_t) + nodes_.size() * sizeof(Node);
}

}  // namespace hwstar::ops
