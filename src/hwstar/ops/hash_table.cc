#include "hwstar/ops/hash_table.h"

#include "hwstar/common/bits.h"

namespace hwstar::ops {

LinearProbeTable::LinearProbeTable(uint64_t expected, double load_factor) {
  HWSTAR_CHECK(load_factor > 0.0 && load_factor < 1.0);
  uint64_t min_cap = static_cast<uint64_t>(
      static_cast<double>(expected < 1 ? 1 : expected) / load_factor);
  uint64_t cap = bits::NextPowerOfTwo(min_cap < 8 ? 8 : min_cap);
  keys_.assign(cap, kEmpty);
  values_.assign(cap, 0);
  mask_ = cap - 1;
  shift_ = 64 - bits::Log2Floor(cap);
}

void LinearProbeTable::Insert(uint64_t key, uint64_t value) {
  HWSTAR_DCHECK(key != kEmpty);
  HWSTAR_CHECK(size_ < capacity());  // table never fills completely
  uint64_t slot = HomeSlot(key);
  while (keys_[slot] != kEmpty) {
    slot = (slot + 1) & mask_;
  }
  keys_[slot] = key;
  values_[slot] = value;
  ++size_;
}

uint32_t LinearProbeTable::Probe(
    uint64_t key, const std::function<void(uint64_t)>& fn) const {
  uint64_t slot = HomeSlot(key);
  uint32_t matches = 0;
  while (keys_[slot] != kEmpty) {
    if (keys_[slot] == key) {
      fn(values_[slot]);
      ++matches;
    }
    slot = (slot + 1) & mask_;
  }
  return matches;
}

bool LinearProbeTable::Find(uint64_t key, uint64_t* out) const {
  uint64_t slot = HomeSlot(key);
  while (keys_[slot] != kEmpty) {
    if (keys_[slot] == key) {
      *out = values_[slot];
      return true;
    }
    slot = (slot + 1) & mask_;
  }
  return false;
}

uint64_t LinearProbeTable::CountMatchesBatch(const uint64_t* keys, uint64_t n,
                                             uint32_t prefetch_distance) const {
  uint64_t matches = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (prefetch_distance != 0 && i + prefetch_distance < n) {
      const uint64_t ahead = HomeSlot(keys[i + prefetch_distance]);
      HWSTAR_PREFETCH(&keys_[ahead]);
    }
    matches += CountMatches(keys[i]);
  }
  return matches;
}

double LinearProbeTable::MeasureAvgProbeLength(
    const std::vector<uint64_t>& sample) const {
  if (sample.empty()) return 0.0;
  uint64_t steps = 0;
  for (uint64_t key : sample) {
    uint64_t slot = HomeSlot(key);
    while (keys_[slot] != kEmpty) {
      ++steps;
      slot = (slot + 1) & mask_;
    }
    ++steps;  // terminating empty slot
  }
  return static_cast<double>(steps) / static_cast<double>(sample.size());
}

ChainedTable::ChainedTable(uint64_t expected_buckets) {
  uint64_t cap =
      bits::NextPowerOfTwo(expected_buckets < 8 ? 8 : expected_buckets);
  buckets_.assign(cap, -1);
  mask_ = cap - 1;
  shift_ = 64 - bits::Log2Floor(cap);
}

void ChainedTable::Insert(uint64_t key, uint64_t value) {
  uint64_t b = HomeSlot(key);
  nodes_.push_back(Node{key, value, buckets_[b]});
  buckets_[b] = static_cast<int64_t>(nodes_.size() - 1);
  ++size_;
}

uint32_t ChainedTable::Probe(uint64_t key,
                             const std::function<void(uint64_t)>& fn) const {
  uint64_t b = HomeSlot(key);
  uint32_t matches = 0;
  for (int64_t n = buckets_[b]; n >= 0;
       n = nodes_[static_cast<size_t>(n)].next) {
    const Node& node = nodes_[static_cast<size_t>(n)];
    if (node.key == key) {
      fn(node.value);
      ++matches;
    }
  }
  return matches;
}

uint32_t ChainedTable::CountMatches(uint64_t key) const {
  uint64_t b = HomeSlot(key);
  uint32_t matches = 0;
  for (int64_t n = buckets_[b]; n >= 0;
       n = nodes_[static_cast<size_t>(n)].next) {
    matches += nodes_[static_cast<size_t>(n)].key == key;
  }
  return matches;
}

bool ChainedTable::Find(uint64_t key, uint64_t* out) const {
  uint64_t b = HomeSlot(key);
  for (int64_t n = buckets_[b]; n >= 0;
       n = nodes_[static_cast<size_t>(n)].next) {
    const Node& node = nodes_[static_cast<size_t>(n)];
    if (node.key == key) {
      *out = node.value;
      return true;
    }
  }
  return false;
}

double ChainedTable::MeasureAvgProbeLength(
    const std::vector<uint64_t>& sample) const {
  if (sample.empty()) return 0.0;
  uint64_t steps = 0;
  for (uint64_t key : sample) {
    uint64_t b = HomeSlot(key);
    for (int64_t n = buckets_[b]; n >= 0;
         n = nodes_[static_cast<size_t>(n)].next) {
      ++steps;
    }
    ++steps;  // bucket-head inspection
  }
  return static_cast<double>(steps) / static_cast<double>(sample.size());
}

uint64_t ChainedTable::MemoryBytes() const {
  return buckets_.size() * sizeof(int64_t) + nodes_.size() * sizeof(Node);
}

}  // namespace hwstar::ops
