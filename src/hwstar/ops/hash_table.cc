#include "hwstar/ops/hash_table.h"

#include "hwstar/common/bits.h"
#include "hwstar/sync/epoch.h"

namespace hwstar::ops {

LinearProbeTable::LinearProbeTable(uint64_t expected, double load_factor) {
  HWSTAR_CHECK(load_factor > 0.0 && load_factor < 1.0);
  uint64_t min_cap = static_cast<uint64_t>(
      static_cast<double>(expected < 1 ? 1 : expected) / load_factor);
  uint64_t cap = bits::NextPowerOfTwo(min_cap < 8 ? 8 : min_cap);
  keys_.reset(new std::atomic<uint64_t>[cap]);
  values_.reset(new std::atomic<uint64_t>[cap]);
  for (uint64_t i = 0; i < cap; ++i) {
    keys_[i].store(kEmpty, std::memory_order_relaxed);
    values_[i].store(0, std::memory_order_relaxed);
  }
  mask_ = cap - 1;
  shift_ = 64 - bits::Log2Floor(cap);
}

void LinearProbeTable::Insert(uint64_t key, uint64_t value) {
  HWSTAR_DCHECK(key != kEmpty);
  HWSTAR_CHECK(size_ < capacity());  // table never fills completely
  uint64_t slot = HomeSlot(key);
  while (keys_[slot].load(std::memory_order_relaxed) != kEmpty) {
    slot = (slot + 1) & mask_;
  }
  // Value first, then the key with release: a reader that sees the key
  // (acquire) sees the value. Until the key lands the slot reads kEmpty
  // and the entry is simply not there yet.
  values_[slot].store(value, std::memory_order_relaxed);
  keys_[slot].store(key, std::memory_order_release);
  ++size_;
}

bool LinearProbeTable::Find(uint64_t key, uint64_t* out) const {
  uint64_t value = 0;
  const uint32_t matches =
      WalkChainFrom(key, HomeSlot(key), [&](uint64_t slot) {
        value = values_[slot].load(std::memory_order_relaxed);
        return false;  // first match only
      });
  if (matches == 0) return false;
  *out = value;
  return true;
}

size_t LinearProbeTable::FindBatch(const uint64_t* keys, size_t n,
                                   uint64_t* values, bool* found,
                                   uint32_t group_size) const {
  size_t hits = 0;
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t G = decltype(g)::value;
    const simd::Backend be = simd::ActiveBackend();
    uint64_t slots[G];
    // Explicit group loop: the hash phase is one data-parallel
    // Mix64Batch sweep per group, then G prefetches go out together,
    // then the probe phase walks chains against lines already in
    // flight. The ragged tail (and any batch under one group) takes
    // the scalar path with no staging overhead.
    size_t i = 0;
    for (; i + G <= n; i += G) {
      simd::Mix64Batch(be, keys + i, G, slots);
      for (uint32_t lane = 0; lane < G; ++lane) {
        slots[lane] >>= shift_;
        HWSTAR_PREFETCH(&keys_[slots[lane]]);
        HWSTAR_PREFETCH(&values_[slots[lane]]);
      }
      for (uint32_t lane = 0; lane < G; ++lane) {
        const size_t idx = i + lane;
        uint64_t value = 0;
        const bool hit =
            WalkChainFrom(keys[idx], slots[lane], [&](uint64_t slot) {
              value = values_[slot].load(std::memory_order_relaxed);
              return false;
            }) != 0;
        values[idx] = value;
        if (found != nullptr) found[idx] = hit;
        hits += hit;
      }
    }
    for (; i < n; ++i) {
      uint64_t value = 0;
      const bool hit = Find(keys[i], &value);
      values[i] = hit ? value : 0;
      if (found != nullptr) found[i] = hit;
      hits += hit;
    }
  });
  return hits;
}

uint64_t LinearProbeTable::CountMatchesBatch(const uint64_t* keys, uint64_t n,
                                             uint32_t prefetch_distance) const {
  uint64_t matches = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (prefetch_distance != 0 && i + prefetch_distance < n) {
      const uint64_t ahead = HomeSlot(keys[i + prefetch_distance]);
      HWSTAR_PREFETCH(&keys_[ahead]);
    }
    matches += CountMatches(keys[i]);
  }
  return matches;
}

double LinearProbeTable::MeasureAvgProbeLength(
    const std::vector<uint64_t>& sample) const {
  if (sample.empty()) return 0.0;
  uint64_t steps = 0;
  for (uint64_t key : sample) {
    uint64_t slot = HomeSlot(key);
    while (keys_[slot].load(std::memory_order_acquire) != kEmpty) {
      ++steps;
      slot = (slot + 1) & mask_;
    }
    ++steps;  // terminating empty slot
  }
  return static_cast<double>(steps) / static_cast<double>(sample.size());
}

ChainedTable::ChainedTable(uint64_t expected_buckets) {
  uint64_t cap =
      bits::NextPowerOfTwo(expected_buckets < 8 ? 8 : expected_buckets);
  buckets_.reset(new std::atomic<int64_t>[cap]);
  for (uint64_t i = 0; i < cap; ++i) {
    buckets_[i].store(-1, std::memory_order_relaxed);
  }
  // One node per bucket up front; growth doubles from there.
  block_.store(new NodeBlock(cap), std::memory_order_relaxed);
  mask_ = cap - 1;
  shift_ = 64 - bits::Log2Floor(cap);
}

ChainedTable::~ChainedTable() {
  delete block_.load(std::memory_order_relaxed);
}

ChainedTable::NodeBlock* ChainedTable::Grow(NodeBlock* old) {
  const uint64_t count = size_.load(std::memory_order_relaxed);
  NodeBlock* grown = new NodeBlock(old->capacity * 2);
  for (uint64_t i = 0; i < count; ++i) {
    grown->nodes[i] = old->nodes[i];
  }
  // Publish the block before any bucket head can name an index in the new
  // range -- the reader-side Resnapshot contract depends on this order.
  block_.store(grown, std::memory_order_release);
  if (epoch_ != nullptr) {
    epoch_->Retire(
        old, [](void* p) { delete static_cast<NodeBlock*>(p); },
        sizeof(NodeBlock) + old->capacity * sizeof(Node));
  } else {
    delete old;
  }
  return grown;
}

void ChainedTable::Insert(uint64_t key, uint64_t value) {
  const uint64_t b = HomeSlot(key);
  const uint64_t count = size_.load(std::memory_order_relaxed);
  NodeBlock* blk = block_.load(std::memory_order_relaxed);
  if (count == blk->capacity) blk = Grow(blk);
  // Fill the node privately, then publish it by swinging the bucket head
  // (release). Prepending keeps every reachable node immutable and makes
  // chain indices strictly decreasing.
  Node& node = blk->nodes[count];
  node.key = key;
  node.value = value;
  node.next = buckets_[b].load(std::memory_order_relaxed);
  buckets_[b].store(static_cast<int64_t>(count), std::memory_order_release);
  size_.store(count + 1, std::memory_order_relaxed);
}

uint32_t ChainedTable::CountMatches(uint64_t key) const {
  const uint64_t b = HomeSlot(key);
  const NodeBlock* blk = block_.load(std::memory_order_acquire);
  int64_t n = buckets_[b].load(std::memory_order_acquire);
  blk = Resnapshot(blk, n);
  uint32_t matches = 0;
  while (n >= 0) {
    const Node& node = blk->nodes[static_cast<size_t>(n)];
    matches += node.key == key;
    n = node.next;
  }
  return matches;
}

bool ChainedTable::Find(uint64_t key, uint64_t* out) const {
  return FindAtBucket(HomeSlot(key), key, out);
}

bool ChainedTable::FindAtBucket(uint64_t b, uint64_t key,
                                uint64_t* out) const {
  const NodeBlock* blk = block_.load(std::memory_order_acquire);
  int64_t n = buckets_[b].load(std::memory_order_acquire);
  blk = Resnapshot(blk, n);
  while (n >= 0) {
    const Node& node = blk->nodes[static_cast<size_t>(n)];
    if (node.key == key) {
      *out = node.value;
      return true;
    }
    n = node.next;
  }
  return false;
}

size_t ChainedTable::FindBatch(const uint64_t* keys, size_t n,
                               uint64_t* values, bool* found,
                               uint32_t group_size) const {
  size_t hits = 0;
  if (group_size == 0) {
    // Auto mode: the footprint gate applies. A cache-resident table's
    // ring would only add overhead (see the footprint-gate comment in
    // the header); the gate is the calibrated tune::AmacMinTableBytes
    // knob, read per batch. An explicit nonzero group_size skips the
    // gate entirely — the caller (a Calibrator trial, a pinned-width
    // bench arm) is asking for the ring, not for a policy decision.
    if (MemoryBytes() < hw::DefaultAmacMinTableBytes()) {
      // Cache-resident walk: chain steps hit, so hashing is a real
      // fraction of the cost -- run it data-parallel in chunks and
      // feed the precomputed buckets to the walk.
      const simd::Backend be = simd::ActiveBackend();
      constexpr size_t kChunk = 256;
      uint64_t bucket_of[kChunk];
      for (size_t base = 0; base < n; base += kChunk) {
        const size_t m = n - base < kChunk ? n - base : kChunk;
        simd::Mix64Batch(be, keys + base, m, bucket_of);
        for (size_t j = 0; j < m; ++j) {
          const size_t i = base + j;
          uint64_t value = 0;
          const bool hit =
              FindAtBucket(bucket_of[j] >> shift_, keys[i], &value);
          values[i] = hit ? value : 0;
          if (found != nullptr) found[i] = hit;
          hits += hit;
        }
      }
      return hits;
    }
    group_size = hw::DefaultAmacRingWidth();
  }
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t K = decltype(g)::value;
    if (n < K) {
      for (size_t i = 0; i < n; ++i) {
        uint64_t value = 0;
        const bool hit = Find(keys[i], &value);
        values[i] = hit ? value : 0;
        if (found != nullptr) found[i] = hit;
        hits += hit;
      }
      return;
    }
    // AMAC walk: stage 0 prefetches the bucket head, each later stage
    // inspects one node and prefetches the next, stopping at the first
    // match (Find semantics). The shared block snapshot only ever moves
    // forward (Resnapshot), and any index valid in an older block stays
    // valid in a newer one, so one snapshot serves all lanes.
    struct Job {
      struct State {
        uint64_t key;
        size_t i;
        uint64_t bucket;
        int64_t node;
        bool at_bucket;
      };
      const ChainedTable* table;
      const NodeBlock* blk;
      uint64_t* values;
      bool* found;
      size_t* hits;
      const uint64_t* keys;

      void Finish(State& st, uint64_t value, bool hit) const {
        values[st.i] = value;
        if (found != nullptr) found[st.i] = hit;
        *hits += hit;
      }
      void Start(State& st, size_t i) {
        st.key = keys[i];
        st.i = i;
        st.bucket = table->HomeSlot(st.key);
        st.at_bucket = true;
        HWSTAR_PREFETCH(&table->buckets_[st.bucket]);
      }
      bool Step(State& st) {
        if (st.at_bucket) {
          st.node = table->buckets_[st.bucket].load(std::memory_order_acquire);
          st.at_bucket = false;
          if (st.node < 0) {
            Finish(st, 0, false);
            return false;
          }
          blk = table->Resnapshot(blk, st.node);
          HWSTAR_PREFETCH(&blk->nodes[static_cast<size_t>(st.node)]);
          return true;
        }
        const Node& node = blk->nodes[static_cast<size_t>(st.node)];
        if (node.key == st.key) {
          Finish(st, node.value, true);
          return false;
        }
        st.node = node.next;
        if (st.node < 0) {
          Finish(st, 0, false);
          return false;
        }
        HWSTAR_PREFETCH(&blk->nodes[static_cast<size_t>(st.node)]);
        return true;
      }
    };
    Job job{this, block_.load(std::memory_order_acquire),
            values, found,    &hits,
            keys};
    AmacLoop<K>(n, job);
  });
  return hits;
}

double ChainedTable::MeasureAvgProbeLength(
    const std::vector<uint64_t>& sample) const {
  if (sample.empty()) return 0.0;
  const NodeBlock* blk = block_.load(std::memory_order_acquire);
  uint64_t steps = 0;
  for (uint64_t key : sample) {
    const uint64_t b = HomeSlot(key);
    int64_t n = buckets_[b].load(std::memory_order_acquire);
    blk = Resnapshot(blk, n);
    while (n >= 0) {
      ++steps;
      n = blk->nodes[static_cast<size_t>(n)].next;
    }
    ++steps;  // bucket-head inspection
  }
  return static_cast<double>(steps) / static_cast<double>(sample.size());
}

uint64_t ChainedTable::MemoryBytes() const {
  return (mask_ + 1) * sizeof(int64_t) + size() * sizeof(Node);
}

}  // namespace hwstar::ops
