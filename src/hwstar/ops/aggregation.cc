#include "hwstar/ops/aggregation.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

#include "hwstar/common/bits.h"
#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"
#include "hwstar/exec/morsel.h"
#include "hwstar/simd/kernels.h"

namespace hwstar::ops {

namespace {

/// Open-addressing SUM/COUNT table used per partition (or globally when
/// partitioning is off).
class AggTable {
 public:
  explicit AggTable(uint64_t expected) {
    uint64_t cap = bits::NextPowerOfTwo(expected * 2 < 16 ? 16 : expected * 2);
    keys_.assign(cap, kEmpty);
    sums_.assign(cap, 0);
    counts_.assign(cap, 0);
    mask_ = cap - 1;
    shift_ = 64 - bits::Log2Floor(cap);
  }

  void Update(uint64_t key, int64_t value) {
    HWSTAR_DCHECK(key != kEmpty);
    uint64_t slot = HomeSlot(key);
    for (;;) {
      if (keys_[slot] == key) {
        sums_[slot] += value;
        ++counts_[slot];
        return;
      }
      if (keys_[slot] == kEmpty) break;
      slot = (slot + 1) & mask_;
    }
    // New group: grow first if needed (slots move), then insert.
    if ((size_ + 1) * 2 > capacity()) Grow();
    InsertFresh(key, value);
  }

  void Drain(std::vector<GroupSum>* out) const {
    for (uint64_t i = 0; i <= mask_; ++i) {
      if (keys_[i] != kEmpty) {
        out->push_back(GroupSum{keys_[i], sums_[i], counts_[i]});
      }
    }
  }

  uint64_t capacity() const { return mask_ + 1; }

 private:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  /// High hash bits: independent of the low bits used by the radix
  /// partitioning above (see LinearProbeTable::HomeSlot).
  uint64_t HomeSlot(uint64_t key) const { return Mix64(key) >> shift_; }

  void InsertFresh(uint64_t key, int64_t value) {
    uint64_t slot = HomeSlot(key);
    while (keys_[slot] != kEmpty) slot = (slot + 1) & mask_;
    keys_[slot] = key;
    sums_[slot] = value;
    counts_[slot] = 1;
    ++size_;
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<int64_t> old_sums = std::move(sums_);
    std::vector<uint64_t> old_counts = std::move(counts_);
    uint64_t cap = (mask_ + 1) * 2;
    keys_.assign(cap, kEmpty);
    sums_.assign(cap, 0);
    counts_.assign(cap, 0);
    mask_ = cap - 1;
    shift_ = 64 - bits::Log2Floor(cap);
    size_ = 0;
    for (uint64_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      uint64_t slot = HomeSlot(old_keys[i]);
      while (keys_[slot] != kEmpty) slot = (slot + 1) & mask_;
      keys_[slot] = old_keys[i];
      sums_[slot] = old_sums[i];
      counts_[slot] = old_counts[i];
      ++size_;
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<int64_t> sums_;
  std::vector<uint64_t> counts_;
  uint64_t mask_;
  uint32_t shift_;
  uint64_t size_ = 0;
};

void AggregateRange(std::span<const uint64_t> keys,
                    std::span<const int64_t> values, uint64_t begin,
                    uint64_t end, AggTable* table) {
  for (uint64_t i = begin; i < end; ++i) {
    table->Update(keys[i], values[i]);
  }
}

}  // namespace

std::vector<GroupSum> HashAggregate(std::span<const uint64_t> keys,
                                    std::span<const int64_t> values,
                                    const HashAggregateOptions& options) {
  HWSTAR_CHECK(keys.size() == values.size());
  std::vector<GroupSum> result;
  const uint64_t n = keys.size();
  if (n == 0) return result;

  if (options.radix_bits == 0) {
    AggTable table(1024);
    AggregateRange(keys, values, 0, n, &table);
    table.Drain(&result);
  } else {
    const uint64_t fanout = uint64_t{1} << options.radix_bits;
    // Partition the input (histogram + scatter of key/value pairs).
    std::vector<uint64_t> hist(fanout + 1, 0);
    auto part_of = [&](uint64_t key) {
      return bits::ExtractBits(Mix64(key), 0, options.radix_bits);
    };
    for (uint64_t i = 0; i < n; ++i) ++hist[part_of(keys[i]) + 1];
    for (uint64_t p = 1; p <= fanout; ++p) hist[p] += hist[p - 1];
    std::vector<uint64_t> pkeys(n);
    std::vector<int64_t> pvalues(n);
    {
      std::vector<uint64_t> cursor(hist.begin(), hist.end() - 1);
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t dst = cursor[part_of(keys[i])]++;
        pkeys[dst] = keys[i];
        pvalues[dst] = values[i];
      }
    }
    // Aggregate each partition with a small table.
    std::mutex result_mutex;
    auto do_partition = [&](uint64_t p) {
      const uint64_t begin = hist[p], end = hist[p + 1];
      if (begin == end) return;
      AggTable table((end - begin) / 2 + 8);
      AggregateRange(pkeys, pvalues, begin, end, &table);
      std::vector<GroupSum> local;
      table.Drain(&local);
      std::lock_guard<std::mutex> lock(result_mutex);
      result.insert(result.end(), local.begin(), local.end());
    };
    if (options.pool == nullptr) {
      for (uint64_t p = 0; p < fanout; ++p) do_partition(p);
    } else {
      for (uint64_t p = 0; p < fanout; ++p) {
        options.pool->Submit([&, p](uint32_t) { do_partition(p); });
      }
      options.pool->WaitIdle();
    }
  }

  std::sort(result.begin(), result.end(),
            [](const GroupSum& a, const GroupSum& b) { return a.key < b.key; });
  return result;
}

int64_t Sum(std::span<const int64_t> values) {
  return simd::Sum(simd::ActiveBackend(), values.data(), values.size());
}

int64_t Min(std::span<const int64_t> values) {
  if (values.empty()) return std::numeric_limits<int64_t>::max();
  return simd::Min(simd::ActiveBackend(), values.data(), values.size());
}

int64_t Max(std::span<const int64_t> values) {
  if (values.empty()) return std::numeric_limits<int64_t>::min();
  return simd::Max(simd::ActiveBackend(), values.data(), values.size());
}

int64_t ParallelSum(std::span<const int64_t> values, exec::Executor* pool,
                    uint64_t morsel_size) {
  if (pool == nullptr) return Sum(values);
  const simd::Backend be = simd::ActiveBackend();
  std::atomic<int64_t> total{0};
  exec::ParallelForMorsels(
      pool, values.size(), morsel_size,
      [&](uint32_t /*worker*/, exec::Morsel m) {
        const int64_t local =
            simd::Sum(be, values.data() + m.begin, m.end - m.begin);
        total.fetch_add(local, std::memory_order_relaxed);
      });
  return total.load(std::memory_order_relaxed);
}

}  // namespace hwstar::ops
