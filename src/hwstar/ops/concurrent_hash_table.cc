#include "hwstar/ops/concurrent_hash_table.h"

#include "hwstar/common/bits.h"

namespace hwstar::ops {

ConcurrentHashTable::ConcurrentHashTable(uint64_t expected,
                                         double load_factor) {
  HWSTAR_CHECK(load_factor > 0.0 && load_factor < 1.0);
  uint64_t min_cap = static_cast<uint64_t>(
      static_cast<double>(expected < 1 ? 1 : expected) / load_factor);
  uint64_t cap = bits::NextPowerOfTwo(min_cap < 8 ? 8 : min_cap);
  keys_ = std::vector<std::atomic<uint64_t>>(cap);
  values_ = std::vector<std::atomic<uint64_t>>(cap);
  for (uint64_t i = 0; i < cap; ++i) {
    keys_[i].store(kEmpty, std::memory_order_relaxed);
  }
  mask_ = cap - 1;
  shift_ = 64 - bits::Log2Floor(cap);
}

void ConcurrentHashTable::Insert(uint64_t key, uint64_t value) {
  HWSTAR_DCHECK(key != kEmpty);
  uint64_t slot = HomeSlot(key);
  for (;;) {
    uint64_t expected = kEmpty;
    if (keys_[slot].load(std::memory_order_acquire) == kEmpty &&
        keys_[slot].compare_exchange_strong(expected, key,
                                            std::memory_order_acq_rel)) {
      // Slot claimed; publish the value. Readers that race with in-flight
      // builds may see a claimed key before its value -- the contract is
      // reads happen after the build completes.
      values_[slot].store(value, std::memory_order_release);
      return;
    }
    slot = (slot + 1) & mask_;
  }
}

uint64_t ConcurrentHashTable::CountMatches(uint64_t key) const {
  uint64_t slot = HomeSlot(key);
  uint64_t matches = 0;
  for (;;) {
    const uint64_t k = keys_[slot].load(std::memory_order_acquire);
    if (k == kEmpty) return matches;
    matches += k == key;
    slot = (slot + 1) & mask_;
  }
}

uint64_t ConcurrentHashTable::size() const {
  uint64_t count = 0;
  for (const auto& k : keys_) {
    count += k.load(std::memory_order_relaxed) != kEmpty;
  }
  return count;
}

bool ConcurrentHashTable::Find(uint64_t key, uint64_t* value) const {
  uint64_t slot = HomeSlot(key);
  for (;;) {
    const uint64_t k = keys_[slot].load(std::memory_order_acquire);
    if (k == kEmpty) return false;
    if (k == key) {
      *value = values_[slot].load(std::memory_order_acquire);
      return true;
    }
    slot = (slot + 1) & mask_;
  }
}

size_t ConcurrentHashTable::FindBatch(const uint64_t* keys, size_t n,
                                      uint64_t* values, bool* found,
                                      uint32_t group_size) const {
  size_t hits = 0;
  WithProbeGroup(group_size, [&](auto g) {
    constexpr uint32_t G = decltype(g)::value;
    if (n < G) {
      for (size_t i = 0; i < n; ++i) {
        uint64_t value = 0;
        const bool hit = Find(keys[i], &value);
        values[i] = hit ? value : 0;
        if (found != nullptr) found[i] = hit;
        hits += hit;
      }
      return;
    }
    uint64_t slots[G];
    GroupPrefetchLoop<G>(
        n,
        [&](uint32_t lane, size_t i) {
          const uint64_t slot = HomeSlot(keys[i]);
          slots[lane] = slot;
          HWSTAR_PREFETCH(&keys_[slot]);
          HWSTAR_PREFETCH(&values_[slot]);
        },
        [&](uint32_t lane, size_t i) {
          const uint64_t key = keys[i];
          uint64_t slot = slots[lane];
          uint64_t value = 0;
          bool hit = false;
          for (;;) {
            const uint64_t k = keys_[slot].load(std::memory_order_acquire);
            if (k == kEmpty) break;
            if (k == key) {
              value = values_[slot].load(std::memory_order_acquire);
              hit = true;
              break;
            }
            slot = (slot + 1) & mask_;
          }
          values[i] = value;
          if (found != nullptr) found[i] = hit;
          hits += hit;
        });
  });
  return hits;
}

}  // namespace hwstar::ops
