#include "hwstar/ops/partition.h"

#include <cstring>

#include "hwstar/common/bits.h"
#include "hwstar/common/hash.h"
#include "hwstar/common/macros.h"
#include "hwstar/simd/kernels.h"

namespace hwstar::ops {

namespace {

// Partition index: bits::ExtractBits(Mix64(key), shift, radix_bits) --
// must match join_radix.cc's PartitionOf so buffered and direct
// partitioning interoperate. Both passes below compute it from hashes
// precomputed in chunks by simd::Mix64Batch (bit-identical to Mix64).

/// Buffer depth: 4 tuples of (key, payload) = 64 bytes, one cache line
/// per stream for each of keys/payloads.
constexpr uint32_t kBufferTuples = 4;

/// Hash-chunk size for the data-parallel bucket computation: both passes
/// hash every key, so the Mix64 runs as simd::Mix64Batch sweeps over
/// chunks this size (16KB of hashes -- L1-resident) and the partition
/// index is extracted from the precomputed hash.
constexpr uint64_t kHashChunk = 2048;

}  // namespace

void RadixPartitionBuffered(const Relation& input, uint32_t radix_bits,
                            uint32_t shift, Relation* output,
                            std::vector<uint64_t>* offsets) {
  const uint64_t fanout = uint64_t{1} << radix_bits;
  const uint64_t n = input.size();
  offsets->assign(fanout + 1, 0);

  const simd::Backend be = simd::ActiveBackend();
  std::vector<uint64_t> hashes(n < kHashChunk ? n : kHashChunk);
  for (uint64_t base = 0; base < n; base += kHashChunk) {
    const uint64_t m = n - base < kHashChunk ? n - base : kHashChunk;
    simd::Mix64Batch(be, input.keys.data() + base, m, hashes.data());
    for (uint64_t j = 0; j < m; ++j) {
      ++(*offsets)[bits::ExtractBits(hashes[j], shift, radix_bits) + 1];
    }
  }
  for (uint64_t p = 1; p <= fanout; ++p) (*offsets)[p] += (*offsets)[p - 1];

  output->keys.resize(n);
  output->payloads.resize(n);
  std::vector<uint64_t> cursor(offsets->begin(), offsets->end() - 1);

  // Per-partition staging buffers (contiguous, so the buffer region itself
  // stays cache-resident at any fan-out up to ~2^16).
  std::vector<uint64_t> buf_keys(fanout * kBufferTuples);
  std::vector<uint64_t> buf_payloads(fanout * kBufferTuples);
  std::vector<uint8_t> buf_fill(fanout, 0);

  auto flush = [&](uint64_t p, uint32_t count) {
    const uint64_t dst = cursor[p];
    std::memcpy(output->keys.data() + dst, buf_keys.data() + p * kBufferTuples,
                count * sizeof(uint64_t));
    std::memcpy(output->payloads.data() + dst,
                buf_payloads.data() + p * kBufferTuples,
                count * sizeof(uint64_t));
    cursor[p] += count;
  };

  for (uint64_t base = 0; base < n; base += kHashChunk) {
    const uint64_t m = n - base < kHashChunk ? n - base : kHashChunk;
    simd::Mix64Batch(be, input.keys.data() + base, m, hashes.data());
    for (uint64_t j = 0; j < m; ++j) {
      const uint64_t i = base + j;
      const uint64_t p = bits::ExtractBits(hashes[j], shift, radix_bits);
      const uint32_t fill = buf_fill[p];
      buf_keys[p * kBufferTuples + fill] = input.keys[i];
      buf_payloads[p * kBufferTuples + fill] = input.payloads[i];
      if (fill + 1 == kBufferTuples) {
        flush(p, kBufferTuples);
        buf_fill[p] = 0;
      } else {
        buf_fill[p] = static_cast<uint8_t>(fill + 1);
      }
    }
  }
  for (uint64_t p = 0; p < fanout; ++p) {
    if (buf_fill[p] != 0) flush(p, buf_fill[p]);
  }
}

}  // namespace hwstar::ops
