#ifndef HWSTAR_COMMON_HASH_H_
#define HWSTAR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hwstar {

/// 64-bit finalizer from MurmurHash3 (fmix64). Good avalanche behaviour;
/// this is the hash used by the join/aggregation hash tables, where hashing
/// throughput directly determines probe cost.
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Batched Mix64: out[i] = Mix64(keys[i]) for i in [0, n), bit-identical
/// to the scalar loop. Runs data-parallel (4-wide AVX2 / 2-wide SSE4.2)
/// on the active hwstar::simd backend — this is the hash phase of the
/// batched probe kernels and radix partitioning. Defined in
/// simd/kernels.cc; callers that want to pin the backend (benches,
/// cross-backend identity tests) use simd::Mix64Batch directly.
void Mix64Batch(const uint64_t* keys, size_t n, uint64_t* out);

/// Cheap multiplicative hash (Knuth); used where speed matters more than
/// avalanche quality (e.g., radix partitioning pre-hash).
inline uint64_t MultiplicativeHash(uint64_t k) {
  return k * 0x9e3779b97f4a7c15ULL;
}

/// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Bytewise FNV-1a for strings and raw buffers.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL);

/// Convenience overload for string views.
inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// CRC32 (software, slice-by-1, polynomial 0xEDB88320). Used by storage
/// checksums.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace hwstar

#endif  // HWSTAR_COMMON_HASH_H_
