#ifndef HWSTAR_COMMON_LOGGING_H_
#define HWSTAR_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hwstar {

/// Log severities in increasing order of importance.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Global minimum severity; messages below it are dropped. Defaults to
/// kWarning so library internals stay quiet in benchmarks.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hwstar

#define HWSTAR_LOG(level)                                                  \
  ::hwstar::internal::LogMessage(::hwstar::LogLevel::k##level, __FILE__, \
                                 __LINE__)                                 \
      .stream()

#endif  // HWSTAR_COMMON_LOGGING_H_
