#ifndef HWSTAR_COMMON_TIMER_H_
#define HWSTAR_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace hwstar {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Restart().
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// Seconds elapsed as a double.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer: sums the durations of Start()/Stop() intervals.
/// Useful for timing a phase that is entered many times.
class AccumulatingTimer {
 public:
  void Start() { timer_.Restart(); running_ = true; }
  void Stop() {
    if (running_) {
      total_nanos_ += timer_.ElapsedNanos();
      running_ = false;
    }
  }
  void Reset() { total_nanos_ = 0; running_ = false; }
  uint64_t TotalNanos() const { return total_nanos_; }
  double TotalSeconds() const { return static_cast<double>(total_nanos_) * 1e-9; }

 private:
  WallTimer timer_;
  uint64_t total_nanos_ = 0;
  bool running_ = false;
};

}  // namespace hwstar

#endif  // HWSTAR_COMMON_TIMER_H_
