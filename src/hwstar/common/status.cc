#include "hwstar/common/status.h"

namespace hwstar {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace hwstar
