#include "hwstar/common/random.h"

#include "hwstar/common/macros.h"

namespace hwstar {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  HWSTAR_DCHECK(bound != 0);
  // Lemire's nearly-divisionless bounded generation; the slight modulo bias
  // of the plain multiply-shift is acceptable for workload generation, so we
  // skip the rejection loop for speed and determinism.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Xoshiro256::NextInRange(int64_t lo, int64_t hi) {
  HWSTAR_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

}  // namespace hwstar
