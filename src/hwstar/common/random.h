#ifndef HWSTAR_COMMON_RANDOM_H_
#define HWSTAR_COMMON_RANDOM_H_

#include <cstdint>

namespace hwstar {

/// SplitMix64: used to seed Xoshiro and as a standalone stateless generator.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** PRNG. Deterministic, fast, and independent of the standard
/// library so workload generation is reproducible across platforms.
class Xoshiro256 {
 public:
  /// Seeds all four words from SplitMix64(seed).
  explicit Xoshiro256(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Next 64 uniformly random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  /// bound must be non-zero.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive; lo must be <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

 private:
  uint64_t s_[4];
};

}  // namespace hwstar

#endif  // HWSTAR_COMMON_RANDOM_H_
