#ifndef HWSTAR_COMMON_MACROS_H_
#define HWSTAR_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Unrecoverable invariant check, active in all build types. The library
/// uses HWSTAR_CHECK for programmer errors (not data errors, which are
/// reported via Status).
#define HWSTAR_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "HWSTAR_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Debug-only invariant check (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define HWSTAR_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define HWSTAR_DCHECK(cond) HWSTAR_CHECK(cond)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define HWSTAR_LIKELY(x) __builtin_expect(!!(x), 1)
#define HWSTAR_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define HWSTAR_ALWAYS_INLINE inline __attribute__((always_inline))
#define HWSTAR_NOINLINE __attribute__((noinline))
#define HWSTAR_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define HWSTAR_LIKELY(x) (x)
#define HWSTAR_UNLIKELY(x) (x)
#define HWSTAR_ALWAYS_INLINE inline
#define HWSTAR_NOINLINE
#define HWSTAR_PREFETCH(addr)
#endif

#endif  // HWSTAR_COMMON_MACROS_H_
