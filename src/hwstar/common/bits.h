#ifndef HWSTAR_COMMON_BITS_H_
#define HWSTAR_COMMON_BITS_H_

#include <bit>
#include <cstdint>

#include "hwstar/common/macros.h"

namespace hwstar::bits {

/// True when v is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Smallest power of two >= v (v=0 maps to 1).
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  if (v <= 1) return 1;
  return uint64_t{1} << (64 - std::countl_zero(v - 1));
}

/// floor(log2(v)); v must be non-zero.
constexpr uint32_t Log2Floor(uint64_t v) {
  return 63 - static_cast<uint32_t>(std::countl_zero(v));
}

/// ceil(log2(v)); v must be non-zero.
constexpr uint32_t Log2Ceil(uint64_t v) {
  return v <= 1 ? 0 : Log2Floor(v - 1) + 1;
}

/// Rounds v up to the next multiple of `align` (align must be a power of
/// two).
constexpr uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Rounds v down to a multiple of `align` (align must be a power of two).
constexpr uint64_t AlignDown(uint64_t v, uint64_t align) {
  return v & ~(align - 1);
}

/// Extracts `nbits` bits of v starting at bit `lo`.
constexpr uint64_t ExtractBits(uint64_t v, uint32_t lo, uint32_t nbits) {
  if (nbits == 0) return 0;
  return (v >> lo) & ((nbits >= 64) ? ~uint64_t{0} : ((uint64_t{1} << nbits) - 1));
}

/// Population count.
constexpr uint32_t PopCount(uint64_t v) {
  return static_cast<uint32_t>(std::popcount(v));
}

/// Number of bytes needed to store `nbits` bits.
constexpr uint64_t BytesForBits(uint64_t nbits) { return (nbits + 7) / 8; }

}  // namespace hwstar::bits

#endif  // HWSTAR_COMMON_BITS_H_
