#include "hwstar/common/timer.h"

// WallTimer and AccumulatingTimer are fully inline; this translation unit
// exists so the module has a home for future non-inline additions and to
// keep one .cc per header as the build convention.
