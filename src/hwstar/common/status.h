#ifndef HWSTAR_COMMON_STATUS_H_
#define HWSTAR_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace hwstar {

/// Error categories used across the library. Mirrors the usual
/// database-systems convention (RocksDB/Arrow-style): no exceptions cross a
/// public API boundary; fallible operations return Status or Result<T>.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kFailedPrecondition = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIoError = 9,
  kDeadlineExceeded = 10,
  /// An optimistic transaction lost its validation race (read-set or lock
  /// conflict). Retryable by construction: nothing was installed.
  kAborted = 11,
};

/// Returns a stable human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. The OK status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Ok" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error result. On success holds a T; on failure holds a
/// non-OK Status. Accessing the value of an errored Result aborts, so
/// callers must check ok() first (enforced in tests).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_ = Status::OK();
  std::optional<T> value_;
};

}  // namespace hwstar

/// Propagates a non-OK Status out of the enclosing function.
#define HWSTAR_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::hwstar::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (0)

#endif  // HWSTAR_COMMON_STATUS_H_
