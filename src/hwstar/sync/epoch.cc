#include "hwstar/sync/epoch.h"

#include <algorithm>

#include "hwstar/common/macros.h"
#include "hwstar/hw/machine_model.h"

namespace hwstar::sync {

namespace {

struct RetiredEntry {
  void* ptr;
  void (*deleter)(void*);
  size_t bytes;
  uint64_t epoch;  // global epoch at retire time
};

}  // namespace

/// Shared state of one reclamation domain. Owned by shared_ptr so that a
/// thread that outlives the EpochManager object (its thread-local
/// registration holds a reference) can still flush its retire list at
/// thread exit instead of dangling.
struct EpochManager::Core {
  /// One slot per registered thread. Padded to a cache line: pinning is
  /// the read hot path's only write, and it must not share a line with
  /// another thread's slot (the E11 lesson).
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};  // 0 = not pinned
    std::atomic<bool> used{false};   // reserved by a live thread
  };

  std::atomic<uint64_t> global_epoch{1};
  std::atomic<uint32_t> slot_hwm{0};  // upper bound on slots ever reserved
  Slot slots[kMaxThreads];

  std::mutex orphan_mu;
  std::vector<RetiredEntry> orphans;  // flushed from exiting threads

  // Accounting (relaxed: monotonic counters, not a consistent cut).
  std::atomic<uint64_t> outstanding{0};
  std::atomic<uint64_t> outstanding_bytes{0};
  std::atomic<uint64_t> bytes_hwm{0};
  std::atomic<uint64_t> freed{0};
  std::atomic<uint64_t> advances{0};

  ~Core() {
    // Last reference dropped: no registered threads remain, so every
    // retired object is reclaimable regardless of epoch tags.
    for (const RetiredEntry& e : orphans) e.deleter(e.ptr);
  }

  uint32_t ReserveSlot() {
    for (uint32_t i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (slots[i].used.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
        uint32_t hwm = slot_hwm.load(std::memory_order_relaxed);
        while (hwm < i + 1 && !slot_hwm.compare_exchange_weak(
                                  hwm, i + 1, std::memory_order_acq_rel)) {
        }
        return i;
      }
    }
    HWSTAR_CHECK(false && "EpochManager: more than kMaxThreads registered");
    return 0;
  }

  bool TryAdvance() {
    uint64_t e = global_epoch.load(std::memory_order_seq_cst);
    const uint32_t hwm = slot_hwm.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < hwm; ++i) {
      const uint64_t v = slots[i].epoch.load(std::memory_order_seq_cst);
      if (v != 0 && v != e) return false;  // pinned in an older epoch
    }
    if (global_epoch.compare_exchange_strong(e, e + 1,
                                             std::memory_order_seq_cst)) {
      advances.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;  // someone else advanced; their advance counts
  }

  /// Frees every entry of `list` whose retire epoch is two advances old;
  /// compacts the survivors in place. Returns the number freed.
  uint64_t Sweep(std::vector<RetiredEntry>* list) {
    const uint64_t g = global_epoch.load(std::memory_order_acquire);
    uint64_t freed_count = 0;
    uint64_t freed_bytes = 0;
    size_t keep = 0;
    for (size_t i = 0; i < list->size(); ++i) {
      const RetiredEntry& e = (*list)[i];
      if (e.epoch + 2 <= g) {
        e.deleter(e.ptr);
        ++freed_count;
        freed_bytes += e.bytes;
      } else {
        (*list)[keep++] = e;
      }
    }
    list->resize(keep);
    if (freed_count != 0) {
      outstanding.fetch_sub(freed_count, std::memory_order_relaxed);
      outstanding_bytes.fetch_sub(freed_bytes, std::memory_order_relaxed);
      freed.fetch_add(freed_count, std::memory_order_relaxed);
    }
    return freed_count;
  }

  uint64_t SweepOrphans() {
    std::unique_lock<std::mutex> lock(orphan_mu, std::try_to_lock);
    if (!lock.owns_lock()) return 0;  // another thread is already on it
    return Sweep(&orphans);
  }
};

/// Per-(thread, domain) registration: slot index, pin nesting depth, and
/// the thread's private retire list. Held in a thread_local vector whose
/// destructor flushes and unregisters at thread exit.
struct EpochManager::ThreadRec {
  std::shared_ptr<Core> core;
  uint32_t slot = 0;
  uint32_t nesting = 0;
  uint64_t retires_since_advance = 0;
  std::vector<RetiredEntry> list;

  ~ThreadRec() {
    if (core == nullptr) return;
    HWSTAR_CHECK(nesting == 0 && "thread exited while epoch-pinned");
    if (!list.empty()) {
      std::lock_guard<std::mutex> lock(core->orphan_mu);
      core->orphans.insert(core->orphans.end(), list.begin(), list.end());
    }
    core->slots[slot].epoch.store(0, std::memory_order_release);
    core->slots[slot].used.store(false, std::memory_order_release);
  }

  ThreadRec() = default;
  ThreadRec(ThreadRec&&) = default;
  ThreadRec& operator=(ThreadRec&&) = default;
};

std::vector<std::unique_ptr<EpochManager::ThreadRec>>& EpochManager::TlsRecs() {
  thread_local std::vector<std::unique_ptr<ThreadRec>> recs;
  return recs;
}

EpochManager::ThreadRec& EpochManager::Rec() {
  auto& recs = TlsRecs();
  for (const auto& rec : recs) {
    if (rec->core.get() == core_.get()) return *rec;
  }
  auto rec = std::make_unique<ThreadRec>();
  rec->core = core_;
  rec->slot = core_->ReserveSlot();
  recs.push_back(std::move(rec));
  return *recs.back();
}

EpochManager& EpochManager::Global() {
  static EpochManager* g = new EpochManager();  // deliberately leaked
  return *g;
}

EpochManager::EpochManager() : core_(std::make_shared<Core>()) {}

EpochManager::~EpochManager() = default;  // Core lives until last ThreadRec

void EpochManager::Pin() {
  ThreadRec& r = Rec();
  if (r.nesting++ != 0) return;
  Core::Slot& slot = core_->slots[r.slot];
  uint64_t e = core_->global_epoch.load(std::memory_order_seq_cst);
  for (;;) {
    slot.epoch.store(e, std::memory_order_seq_cst);
    // Re-sync if the global epoch moved between the load and the store:
    // a pin left at a stale epoch would block every future advance until
    // unpin. One iteration suffices in the common case.
    const uint64_t g = core_->global_epoch.load(std::memory_order_seq_cst);
    if (g == e) return;
    e = g;
  }
}

void EpochManager::Unpin() {
  ThreadRec& r = Rec();
  HWSTAR_DCHECK(r.nesting > 0);
  if (--r.nesting == 0) {
    core_->slots[r.slot].epoch.store(0, std::memory_order_release);
  }
}

bool EpochManager::IsPinned() const {
  for (const auto& rec : TlsRecs()) {
    if (rec->core.get() == core_.get()) return rec->nesting > 0;
  }
  return false;
}

void EpochManager::Retire(void* ptr, void (*deleter)(void*), size_t bytes) {
  ThreadRec& r = Rec();
  const uint64_t e = core_->global_epoch.load(std::memory_order_acquire);
  r.list.push_back(RetiredEntry{ptr, deleter, bytes, e});

  core_->outstanding.fetch_add(1, std::memory_order_relaxed);
  const uint64_t now_bytes =
      core_->outstanding_bytes.fetch_add(bytes, std::memory_order_relaxed) +
      bytes;
  uint64_t hwm = core_->bytes_hwm.load(std::memory_order_relaxed);
  while (now_bytes > hwm && !core_->bytes_hwm.compare_exchange_weak(
                                hwm, now_bytes, std::memory_order_relaxed)) {
  }

  // Cadence: attempt an advance every epoch_advance_interval retires and
  // sweep once the private list reaches the retire batch. Both bound the
  // retire-list footprint without putting an advance scan on every op.
  if (++r.retires_since_advance >= hw::DefaultEpochAdvanceInterval()) {
    r.retires_since_advance = 0;
    core_->TryAdvance();
  }
  if (r.list.size() >= hw::DefaultEpochRetireBatch()) {
    core_->Sweep(&r.list);
    core_->SweepOrphans();
  }
}

uint64_t EpochManager::epoch() const {
  return core_->global_epoch.load(std::memory_order_acquire);
}

bool EpochManager::TryAdvance() { return core_->TryAdvance(); }

uint64_t EpochManager::ReclaimSome() {
  ThreadRec& r = Rec();
  core_->TryAdvance();
  return core_->Sweep(&r.list) + core_->SweepOrphans();
}

uint64_t EpochManager::ReclaimAll() {
  uint64_t total = 0;
  // Two successful advances age every already-retired entry past the
  // reclamation horizon; the third round sweeps stragglers retired
  // between rounds. Pinned readers simply bound what gets freed.
  for (int round = 0; round < 3; ++round) {
    core_->TryAdvance();
    total += core_->Sweep(&Rec().list);
    {
      std::lock_guard<std::mutex> lock(core_->orphan_mu);
      total += core_->Sweep(&core_->orphans);
    }
  }
  return total;
}

EpochManager::Stats EpochManager::stats() const {
  Stats s;
  s.epoch = core_->global_epoch.load(std::memory_order_relaxed);
  s.retired_outstanding = core_->outstanding.load(std::memory_order_relaxed);
  s.retired_bytes = core_->outstanding_bytes.load(std::memory_order_relaxed);
  s.retired_bytes_hwm = core_->bytes_hwm.load(std::memory_order_relaxed);
  s.freed_total = core_->freed.load(std::memory_order_relaxed);
  s.advances = core_->advances.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hwstar::sync
