#ifndef HWSTAR_SYNC_OPTLOCK_H_
#define HWSTAR_SYNC_OPTLOCK_H_

#include <atomic>
#include <cstdint>

namespace hwstar::sync {

/// A versioned latch for optimistic, latch-free reads (the OLC primitive
/// of Leis et al.'s "optimistic lock coupling"). One 64-bit word encodes
///
///   bit 0: obsolete -- the protected object has been unlinked and will
///          be reclaimed; any reader holding a pointer to it must restart
///   bit 1: locked   -- a writer is mutating the protected fields
///   bits 2..63: version counter, bumped by every write-unlock
///
/// Readers never store to the word (no shared-cache-line writes, so read
/// throughput scales with cores): they sample the version, read the
/// protected fields with relaxed atomics, and re-sample; a changed
/// version means a writer interleaved and the read restarts. Writers
/// acquire the lock bit, mutate, and release with a counter bump.
///
/// The arithmetic follows the ARTOLC encoding: an unlocked version has
/// bit 1 clear, so WriteLock adds kLockedBit (setting it) and WriteUnlock
/// adds kLockedBit again -- the carry clears the lock bit and increments
/// the counter in one fetch_add. WriteUnlockObsolete adds
/// kLockedBit + kObsoleteBit, clearing the lock and setting obsolete.
///
/// The restart signalling uses an accumulating `bool* need_restart`: the
/// caller clears it once per attempt and checks after each protocol step,
/// which keeps descent loops free of per-step branching boilerplate.
class OptLock {
 public:
  static constexpr uint64_t kObsoleteBit = 1;
  static constexpr uint64_t kLockedBit = 2;

  static bool IsLocked(uint64_t v) { return (v & kLockedBit) != 0; }
  static bool IsObsolete(uint64_t v) { return (v & kObsoleteBit) != 0; }

  /// Samples the version for an optimistic read. Sets *need_restart when
  /// the word is locked or obsolete; the returned version is then not
  /// meaningful. The acquire load orders the caller's subsequent field
  /// reads after the version sample.
  uint64_t ReadLockOrRestart(bool* need_restart) const {
    const uint64_t v = word_.load(std::memory_order_acquire);
    if (IsLocked(v) || IsObsolete(v)) *need_restart = true;
    return v;
  }

  /// Re-samples and compares: any change (lock taken, version bumped,
  /// obsolete set) since `version` was read means the fields read in
  /// between may be torn, and *need_restart is set.
  void CheckOrRestart(uint64_t version, bool* need_restart) const {
    if (word_.load(std::memory_order_acquire) != version) *need_restart = true;
  }

  /// Atomically upgrades a sampled version to the write lock; false (and
  /// *need_restart) when another writer got there first.
  bool UpgradeToWriteLock(uint64_t version, bool* need_restart) {
    if (word_.compare_exchange_strong(version, version + kLockedBit,
                                      std::memory_order_acquire)) {
      return true;
    }
    *need_restart = true;
    return false;
  }

  /// Blocking write lock (spins; writers in this codebase are already
  /// serialized by a shard latch, so the spin only ever waits out a
  /// version sample race, never another writer).
  void WriteLock() {
    for (;;) {
      uint64_t v = word_.load(std::memory_order_relaxed);
      if (IsLocked(v)) continue;
      if (word_.compare_exchange_weak(v, v + kLockedBit,
                                      std::memory_order_acquire)) {
        return;
      }
    }
  }

  /// Releases the write lock, bumping the version (the carry out of the
  /// lock bit is the increment).
  void WriteUnlock() { word_.fetch_add(kLockedBit, std::memory_order_release); }

  /// Releases the write lock WITHOUT bumping the version: the protected
  /// fields were not mutated. This is the abort path of an optimistic
  /// transaction — a validation failure must not spuriously invalidate
  /// every concurrent reader of the stripes it locked-but-left-untouched.
  void WriteUnlockAborted() {
    word_.fetch_sub(kLockedBit, std::memory_order_release);
  }

  /// One lock-acquisition attempt from an unlocked sample; false when the
  /// word is locked, obsolete, or the CAS loses a race. Unlike WriteLock
  /// this never spins, so callers can bound how long they wait on a
  /// contended stripe (and abort instead of convoying).
  bool TryWriteLock() {
    uint64_t v = word_.load(std::memory_order_relaxed);
    if (IsLocked(v) || IsObsolete(v)) return false;
    return word_.compare_exchange_weak(v, v + kLockedBit,
                                       std::memory_order_acquire);
  }

  /// Releases the write lock and marks the object obsolete: readers that
  /// still hold a pointer to it restart instead of trusting stale fields.
  /// The object must already be unlinked (unreachable for new readers)
  /// and is typically retired to an EpochManager right after.
  void WriteUnlockObsolete() {
    word_.fetch_add(kLockedBit + kObsoleteBit, std::memory_order_release);
  }

  /// Raw version sample (diagnostics/tests).
  uint64_t Version() const { return word_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> word_{0};
};

}  // namespace hwstar::sync

#endif  // HWSTAR_SYNC_OPTLOCK_H_
