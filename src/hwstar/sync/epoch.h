#ifndef HWSTAR_SYNC_EPOCH_H_
#define HWSTAR_SYNC_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace hwstar::sync {

/// Epoch-based memory reclamation (EBR, the McKenney RCU/epoch design):
/// the piece that makes latch-free reads safe. Writers that unlink a node
/// from a shared structure cannot free it immediately -- a reader may
/// still be traversing it -- so they *retire* it to an EpochManager,
/// which defers the free until every reader that could possibly hold the
/// pointer has moved on.
///
/// The protocol:
///  - A global epoch counter advances when every currently-pinned thread
///    has been observed in the current epoch.
///  - Readers pin the current epoch for the duration of a read (Guard
///    RAII; pinning is two stores to the thread's own cache-line-padded
///    slot -- readers never write a shared line, so read throughput
///    scales with cores).
///  - Retired objects are tagged with the epoch at retire time and freed
///    once the global epoch has advanced twice past it: any reader that
///    could have seen the object was pinned at or before the retire
///    epoch, and each advance requires unanimity among pinned threads.
///
/// Retire lists are per-thread (no shared-line writes on the retire path
/// either); a thread sweeps its own list when it exceeds the retire
/// batch, and attempts an epoch advance every `epoch_advance_interval`
/// retires (both knobs live in the tune registry — epoch.retire_batch /
/// epoch.advance_interval, published by hw::MachineModel::ApplyAll and
/// nudged online by tune::Controller).
/// A thread that exits with unreclaimed retirees flushes them to a
/// shared orphan list that other threads sweep opportunistically.
///
/// Threads register lazily on first use and a thread's slot is released
/// at thread exit. A thread that is not pinned never delays reclamation.
class EpochManager {
 public:
  /// Maximum concurrently registered threads (slots are statically
  /// allocated so the advance scan is a flat array walk).
  static constexpr uint32_t kMaxThreads = 512;

  /// The process-wide reclamation domain used by KvStore and the index
  /// structures. Never destroyed (its memory is reachable until exit, so
  /// leak checkers stay quiet and thread-exit hooks can always reach it).
  static EpochManager& Global();

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII epoch pin: every latch-free read must hold one across its whole
  /// traversal (KvStore's read path does this; direct index users that
  /// read concurrently with writers must too). Nestable and cheap: a
  /// thread-local lookup plus two uncontended atomic stores.
  class Guard {
   public:
    Guard() : mgr_(&Global()) { mgr_->Pin(); }
    explicit Guard(EpochManager& mgr) : mgr_(&mgr) { mgr_->Pin(); }
    ~Guard() { mgr_->Unpin(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager* mgr_;
  };

  /// Enters/leaves a read-side critical region (prefer Guard).
  void Pin();
  void Unpin();

  /// Whether the calling thread currently holds a pin on this manager.
  bool IsPinned() const;

  /// Defers `deleter(ptr)` until two epoch advances past the current
  /// epoch. `bytes` is an accounting hint for the memory high-water
  /// stats (pass 0 if unknown). The object must already be unreachable
  /// for new readers (unlink before retire).
  void Retire(void* ptr, void (*deleter)(void*), size_t bytes);

  /// Typed convenience: retires `ptr` for `delete`.
  template <typename T>
  void RetireObject(T* ptr) {
    Retire(
        ptr, [](void* p) { delete static_cast<T*>(p); }, sizeof(T));
  }

  /// Current global epoch.
  uint64_t epoch() const;

  /// Attempts one epoch advance; false when some pinned thread has not
  /// yet been observed in the current epoch.
  bool TryAdvance();

  /// Attempts an advance and sweeps the calling thread's retire list plus
  /// the orphan list; returns the number of objects freed. Safe to call
  /// any time (frees only what the epoch rule proves unreachable).
  uint64_t ReclaimSome();

  /// Quiescent-state reclamation for tests and shutdown: advances and
  /// sweeps until nothing more can be freed from this thread's list and
  /// the orphans. With no concurrent pins this frees everything retired
  /// so far (other threads' lists are flushed to orphans at thread exit).
  uint64_t ReclaimAll();

  struct Stats {
    uint64_t epoch = 0;
    uint64_t retired_outstanding = 0;  ///< retired, not yet freed
    uint64_t retired_bytes = 0;        ///< accounting bytes outstanding
    uint64_t retired_bytes_hwm = 0;    ///< high-water mark of the above
    uint64_t freed_total = 0;
    uint64_t advances = 0;
  };
  Stats stats() const;

 private:
  struct Core;
  struct ThreadRec;

  /// The calling thread's registrations (one per domain it has touched);
  /// flushed and unregistered by its destructor at thread exit.
  static std::vector<std::unique_ptr<ThreadRec>>& TlsRecs();

  ThreadRec& Rec();

  std::shared_ptr<Core> core_;
};

}  // namespace hwstar::sync

#endif  // HWSTAR_SYNC_EPOCH_H_
