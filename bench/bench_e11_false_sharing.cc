// E11 -- multicore means coherence, and coherence has a price. Two series:
//  (a) real hardware: N threads incrementing per-thread counters that are
//      either packed into one cache line (false sharing) or padded to a
//      line each. Expected shape: the packed layout gets *slower* as
//      threads are added -- negative scaling -- while padded scales.
//  (b) simulated MSI model: the same two layouts through CoherenceModel,
//      reporting invalidations and coherence-miss fractions, so the cause
//      is visible, not just the symptom.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "hwstar/sim/coherence.h"

namespace {

constexpr uint64_t kIncrements = 4'000'000;

void BM_CounterIncrements(benchmark::State& state, bool padded) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  struct alignas(64) Padded {
    std::atomic<uint64_t> v{0};
  };
  for (auto _ : state) {
    // Packed: adjacent atomics share a line. Padded: one line each.
    std::vector<std::atomic<uint64_t>> packed(threads);
    std::vector<Padded> pad(threads);
    std::vector<std::thread> workers;
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const uint64_t per_thread = kIncrements / threads;
        if (padded) {
          for (uint64_t i = 0; i < per_thread; ++i) {
            pad[t].v.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          for (uint64_t i = 0; i < per_thread; ++i) {
            packed[t].fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    benchmark::DoNotOptimize(padded ? pad[0].v.load() : packed[0].load());
  }
  state.counters["threads"] = threads;
  state.counters["padded"] = padded ? 1 : 0;
  state.counters["Mincr_per_s"] = benchmark::Counter(
      static_cast<double>(kIncrements) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SimulatedSharing(benchmark::State& state, bool padded) {
  const uint32_t cores = static_cast<uint32_t>(state.range(0));
  hwstar::sim::CoherenceModel model(cores);
  for (auto _ : state) {
    // Round-robin interleaving approximates concurrent execution.
    const uint64_t per_core = 100000;
    for (uint64_t i = 0; i < per_core; ++i) {
      for (uint32_t c = 0; c < cores; ++c) {
        const uint64_t addr = padded ? c * 64 : c * 8;
        model.Access(c, addr, /*is_write=*/true);
      }
    }
    benchmark::DoNotOptimize(model.stats().total_cycles);
  }
  state.counters["threads"] = cores;
  state.counters["padded"] = padded ? 1 : 0;
  state.counters["sim_cycles_per_access"] = model.stats().cycles_per_access();
  state.counters["sim_invalidations"] =
      static_cast<double>(model.stats().invalidations_sent);
}

}  // namespace

int main(int argc, char** argv) {
  for (int64_t t : {1, 2, 4}) {
    benchmark::RegisterBenchmark(
        "real/packed", [](benchmark::State& s) { BM_CounterIncrements(s, false); })
        ->Arg(t)
        ->Iterations(3)
        ->UseRealTime();
    benchmark::RegisterBenchmark(
        "real/padded", [](benchmark::State& s) { BM_CounterIncrements(s, true); })
        ->Arg(t)
        ->Iterations(3)
        ->UseRealTime();
  }
  for (int64_t t : {2, 4, 8}) {
    benchmark::RegisterBenchmark(
        "sim/packed", [](benchmark::State& s) { BM_SimulatedSharing(s, false); })
        ->Arg(t)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "sim/padded", [](benchmark::State& s) { BM_SimulatedSharing(s, true); })
        ->Arg(t)
        ->Iterations(1);
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E11: false sharing -- packed vs padded per-thread counters "
      "(real + simulated MSI)",
      {"threads", "padded", "Mincr_per_s", "sim_cycles_per_access",
       "sim_invalidations"});
}
