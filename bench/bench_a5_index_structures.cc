// A5 (ablation) -- index structure showdown on modern memory hierarchies:
// ART (adaptive radix tree) vs. cache-conscious B+-tree vs. binary search
// over a sorted array vs. std::map (the pointer-heavy oblivious baseline),
// on dense and sparse 64-bit keys. Expected shape (per Leis et al., same
// ICDE'13 proceedings as the keynote): ART leads on point lookups --
// its depth is bounded by key bytes, not log(n) -- with the gap widening
// as the working set leaves cache; std::map trails everything by a wide
// margin (one dependent miss per comparison); the sorted array stays
// competitive for small sets that fit in cache.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "bench_common.h"
#include "hwstar/common/random.h"
#include "hwstar/ops/art.h"
#include "hwstar/ops/btree.h"
#include "hwstar/workload/distributions.h"

namespace {

constexpr uint64_t kLookups = 1'000'000;

struct Dataset {
  std::vector<uint64_t> keys;    // unique, unsorted insert order
  std::vector<uint64_t> sorted;  // sorted copy
  std::vector<uint64_t> probes;  // existing keys, random order
};

const Dataset& Data(uint64_t n, bool dense) {
  static std::map<std::pair<uint64_t, bool>, std::unique_ptr<Dataset>> cache;
  auto& slot = cache[{n, dense}];
  if (slot == nullptr) {
    slot = std::make_unique<Dataset>();
    if (dense) {
      slot->keys = hwstar::workload::ShuffledDenseKeys(n, n);
    } else {
      // Sparse: random 64-bit keys (deduplicated).
      hwstar::Xoshiro256 rng(n + 1);
      slot->keys.reserve(n);
      for (uint64_t i = 0; i < n; ++i) slot->keys.push_back(rng.Next());
      std::sort(slot->keys.begin(), slot->keys.end());
      slot->keys.erase(std::unique(slot->keys.begin(), slot->keys.end()),
                       slot->keys.end());
    }
    slot->sorted = slot->keys;
    std::sort(slot->sorted.begin(), slot->sorted.end());
    hwstar::Xoshiro256 probe_rng(n + 2);
    slot->probes.resize(kLookups);
    for (auto& p : slot->probes) {
      p = slot->keys[probe_rng.NextBounded(slot->keys.size())];
    }
  }
  return *slot;
}

void SetCounters(benchmark::State& state, uint64_t n, bool dense) {
  state.counters["keys"] = static_cast<double>(n);
  state.counters["dense"] = dense ? 1 : 0;
  state.counters["Mlookups_per_s"] = benchmark::Counter(
      static_cast<double>(kLookups) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Art(benchmark::State& state, bool dense) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const Dataset& data = Data(n, dense);
  hwstar::ops::AdaptiveRadixTree art;
  for (uint64_t k : data.keys) art.Insert(k, k);
  for (auto _ : state) {
    uint64_t found = 0, v = 0;
    for (uint64_t p : data.probes) found += art.Find(p, &v);
    benchmark::DoNotOptimize(found);
  }
  SetCounters(state, n, dense);
  state.counters["index_mb"] =
      static_cast<double>(art.MemoryBytes()) / (1 << 20);
}

void BM_BTree(benchmark::State& state, bool dense) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const Dataset& data = Data(n, dense);
  hwstar::ops::BPlusTree tree(32);
  for (uint64_t k : data.keys) tree.Insert(k, k);
  for (auto _ : state) {
    uint64_t found = 0, v = 0;
    for (uint64_t p : data.probes) found += tree.Find(p, &v);
    benchmark::DoNotOptimize(found);
  }
  SetCounters(state, n, dense);
  state.counters["index_mb"] =
      static_cast<double>(tree.MemoryBytes()) / (1 << 20);
}

void BM_BinarySearch(benchmark::State& state, bool dense) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const Dataset& data = Data(n, dense);
  for (auto _ : state) {
    uint64_t found = 0;
    for (uint64_t p : data.probes) {
      found += std::binary_search(data.sorted.begin(), data.sorted.end(), p);
    }
    benchmark::DoNotOptimize(found);
  }
  SetCounters(state, n, dense);
  state.counters["index_mb"] =
      static_cast<double>(data.sorted.size() * 8) / (1 << 20);
}

void BM_StdMap(benchmark::State& state, bool dense) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const Dataset& data = Data(n, dense);
  std::map<uint64_t, uint64_t> index;
  for (uint64_t k : data.keys) index[k] = k;
  for (auto _ : state) {
    uint64_t found = 0;
    for (uint64_t p : data.probes) found += index.count(p);
    benchmark::DoNotOptimize(found);
  }
  SetCounters(state, n, dense);
  state.counters["index_mb"] =
      static_cast<double>(data.keys.size() * 48) / (1 << 20);
}

}  // namespace

int main(int argc, char** argv) {
  for (bool dense : {true, false}) {
    const char* kind = dense ? "dense" : "sparse";
    for (int64_t n : {1 << 14, 1 << 18, 1 << 21}) {
      benchmark::RegisterBenchmark(
          (std::string("art/") + kind).c_str(),
          [dense](benchmark::State& s) { BM_Art(s, dense); })
          ->Arg(n)
          ->Iterations(2);
      benchmark::RegisterBenchmark(
          (std::string("btree/") + kind).c_str(),
          [dense](benchmark::State& s) { BM_BTree(s, dense); })
          ->Arg(n)
          ->Iterations(2);
      benchmark::RegisterBenchmark(
          (std::string("binsearch/") + kind).c_str(),
          [dense](benchmark::State& s) { BM_BinarySearch(s, dense); })
          ->Arg(n)
          ->Iterations(2);
      benchmark::RegisterBenchmark(
          (std::string("stdmap/") + kind).c_str(),
          [dense](benchmark::State& s) { BM_StdMap(s, dense); })
          ->Arg(n)
          ->Iterations(2);
    }
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "A5: index structures, 1M point lookups (ART / B+-tree / binary "
      "search / std::map)",
      {"keys", "dense", "index_mb", "Mlookups_per_s"});
}
