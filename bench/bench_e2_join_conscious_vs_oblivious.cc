// E2 -- the anchor experiment: hardware-conscious radix join vs. the
// hardware-oblivious no-partitioning join (plus sort-merge), across build
// sizes and probe-key skew. Expected shape (per Balkesen et al., ICDE'13):
// while the build side fits in the LLC the two hash joins are comparable
// (NPO can even win -- no partitioning cost); once the build relation
// spills past the cache, the radix join wins and its margin grows with
// build size. Skew helps NPO (hot keys stay cached) and narrows the gap.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hwstar/hw/topology.h"
#include "hwstar/ops/join_nop.h"
#include "hwstar/ops/join_radix.h"
#include "hwstar/ops/join_sort_merge.h"
#include "hwstar/workload/distributions.h"

namespace {

using hwstar::ops::NoPartitionHashJoin;
using hwstar::ops::RadixHashJoin;
using hwstar::ops::RadixJoinOptions;
using hwstar::ops::Relation;
using hwstar::ops::SortMergeJoin;

struct JoinInput {
  Relation build;
  Relation probe;
};

/// Probe = 4x build, per the standard setup.
const JoinInput& Input(uint64_t build_log2, double theta) {
  static std::map<std::pair<uint64_t, int>, std::unique_ptr<JoinInput>> cache;
  auto key = std::make_pair(build_log2, static_cast<int>(theta * 100));
  auto& slot = cache[key];
  if (!slot) {
    slot = std::make_unique<JoinInput>();
    const uint64_t n = uint64_t{1} << build_log2;
    slot->build = hwstar::workload::MakeBuildRelation(n, 101 + build_log2);
    slot->probe =
        hwstar::workload::MakeProbeRelation(4 * n, n, theta, 202 + build_log2);
  }
  return *slot;
}

void SetCounters(benchmark::State& state, uint64_t build_log2, double theta,
                 uint64_t probe_tuples) {
  state.counters["build_log2"] = static_cast<double>(build_log2);
  state.counters["zipf"] = theta;
  state.counters["Mprobes_per_s"] = benchmark::Counter(
      static_cast<double>(probe_tuples) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_NPO(benchmark::State& state, double theta) {
  const uint64_t build_log2 = static_cast<uint64_t>(state.range(0));
  const JoinInput& in = Input(build_log2, theta);
  for (auto _ : state) {
    auto result = NoPartitionHashJoin(in.build, in.probe);
    benchmark::DoNotOptimize(result.matches);
  }
  SetCounters(state, build_log2, theta, in.probe.size());
}

void BM_Radix(benchmark::State& state, double theta) {
  const uint64_t build_log2 = static_cast<uint64_t>(state.range(0));
  const JoinInput& in = Input(build_log2, theta);
  static const uint64_t kLlc = [] {
    auto topo = hwstar::hw::DiscoverTopology();
    uint64_t llc = topo.CacheSizeBytes(3);
    if (llc == 0) llc = topo.CacheSizeBytes(2);
    return llc == 0 ? (8u << 20) : llc;
  }();
  RadixJoinOptions opts;
  opts.radix_bits = hwstar::ops::RecommendRadixBits(in.build.size(), kLlc);
  if (opts.radix_bits > 14) opts.num_passes = 2;
  for (auto _ : state) {
    auto result = RadixHashJoin(in.build, in.probe, opts);
    benchmark::DoNotOptimize(result.matches);
  }
  SetCounters(state, build_log2, theta, in.probe.size());
  state.counters["radix_bits"] = opts.radix_bits;
}

void BM_SortMerge(benchmark::State& state, double theta) {
  const uint64_t build_log2 = static_cast<uint64_t>(state.range(0));
  const JoinInput& in = Input(build_log2, theta);
  for (auto _ : state) {
    auto result = SortMergeJoin(in.build, in.probe);
    benchmark::DoNotOptimize(result.matches);
  }
  SetCounters(state, build_log2, theta, in.probe.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<int64_t> sizes = {16, 18, 20, 22};
  // The literature sweeps Zipf 0 / 0.75 / 1.05; our generator supports
  // theta < 1, so the heavy-skew point is 0.99.
  const std::vector<double> thetas = {0.0, 0.75, 0.99};
  for (double theta : thetas) {
    const std::string suffix =
        theta == 0.0 ? "uniform" : "zipf" + std::to_string(theta).substr(0, 4);
    for (int64_t s : sizes) {
      benchmark::RegisterBenchmark(("npo/" + suffix).c_str(), BM_NPO, theta)
          ->Arg(s)
          ->Iterations(3);
      benchmark::RegisterBenchmark(("radix/" + suffix).c_str(), BM_Radix,
                                   theta)
          ->Arg(s)
          ->Iterations(3);
      if (theta == 0.0) {
        benchmark::RegisterBenchmark(("sortmerge/" + suffix).c_str(),
                                     BM_SortMerge, theta)
            ->Arg(s)
            ->Iterations(3);
      }
    }
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E2: radix join (conscious) vs no-partitioning join (oblivious), "
      "probe=4x build",
      {"build_log2", "zipf", "radix_bits", "Mprobes_per_s"});
}
