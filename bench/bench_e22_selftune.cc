// E22 -- self-tuning under a phase-changing workload. The paper's
// closing argument is that software must *keep* tracking hardware; this
// experiment is the repo's closing loop: the same point-lookup workload
// walks its table footprint across the hierarchy (L1 -> L2 -> L3 ->
// DRAM) and then flips its key skew (uniform -> zipf 0.99), and each
// phase is served by
//
//   static arms    the probe kernels pinned to one configuration for the
//                  whole run: the scalar walk, or the batched kernel at a
//                  fixed width (GP g in {4..32} for the flat table, AMAC
//                  k in {4..32} for the chained table)
//   adaptive arm   group_size 0 -- the kernels read the tune registry,
//                  after a phase-matched tune::Calibrator::RunOnce()
//                  (footprint + skew of the phase) installed winners
//
// Expected shape: no static arm wins everywhere -- scalar wins while the
// table (or the skew-hot set) is cache-resident, wide batching wins in
// DRAM, and the crossover is exactly what the Calibrator measures. The
// adaptive arm should track within a few percent of the best static arm
// in *every* phase while the worst static arm loses >= 1.3x in at least
// one. The summary tables at the end print the per-phase ratios.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/perf/report.h"
#include "hwstar/tune/calibrator.h"
#include "hwstar/tune/tunable.h"
#include "hwstar/workload/distributions.h"

namespace {

using hwstar::ops::ChainedTable;
using hwstar::ops::LinearProbeTable;

constexpr uint64_t kProbes = 1 << 20;

struct Phase {
  const char* label;
  uint64_t build;   // entries; both tables are ~32 bytes/entry
  double theta;     // probe-key zipf skew (0 = uniform)
};

// 512 entries = 16KB (L1); 8K = 256KB (L2); 128K = 4MB (L3); 2M = 64MB
// (DRAM); then the same DRAM table under zipf 0.99 (hot set re-enters
// cache without the footprint changing -- the skew flip).
constexpr Phase kPhases[] = {
    {"l1", 512, 0.0},
    {"l2", 8192, 0.0},
    {"l3", 131072, 0.0},
    {"dram", 1 << 21, 0.0},
    {"dram_zipf", 1 << 21, 0.99},
};
constexpr size_t kNumPhases = sizeof(kPhases) / sizeof(kPhases[0]);

struct Fixture {
  std::unique_ptr<LinearProbeTable> linear;
  std::unique_ptr<ChainedTable> chained;
  std::vector<uint64_t> probes;
};

const Fixture& Get(size_t phase) {
  static Fixture fixtures[kNumPhases];
  static bool built[kNumPhases] = {};
  Fixture& f = fixtures[phase];
  if (!built[phase]) {
    built[phase] = true;
    const Phase& p = kPhases[phase];
    auto rel = hwstar::workload::MakeBuildRelation(p.build, 220 + phase);
    f.linear = std::make_unique<LinearProbeTable>(p.build);
    f.chained = std::make_unique<ChainedTable>(p.build);
    for (uint64_t i = 0; i < p.build; ++i) {
      f.linear->Insert(rel.keys[i], rel.payloads[i]);
      f.chained->Insert(rel.keys[i], rel.payloads[i]);
    }
    // Build keys are dense 0..n-1: a draw over [0, n) always hits, and
    // zipf rank r maps straight to key r.
    f.probes = p.theta == 0.0
                   ? hwstar::workload::UniformKeys(kProbes, p.build, 230)
                   : hwstar::workload::ZipfKeys(kProbes, p.build, p.theta, 230);
  }
  return f;
}

/// The adaptive arm's setup: one Calibrator pass conditioned on the
/// phase (its footprint, its skew), installing winners into the
/// registry the group_size=0 kernels read. Runs outside the timed loop:
/// calibration is a deploy/phase-change cost, not a per-batch one.
void CalibrateForPhase(size_t phase) {
  hwstar::tune::CalibratorOptions opts;
  opts.footprints = {kPhases[phase].build * 32};
  opts.keys_per_trial = 1u << 15;
  // min-of-5 per configuration: this bench shares a core with whatever
  // else the host runs, and a load spike during one rep must not flip a
  // 20% k16-vs-k32 gap
  opts.repetitions = 5;
  opts.probe_theta = kPhases[phase].theta;
  const auto result = hwstar::tune::Calibrator(opts).RunOnce();
  std::fprintf(stderr, "[%s] %s", kPhases[phase].label,
               result.ToString().c_str());
}

template <typename Table>
void BM_Scalar(benchmark::State& state, const Table& table,
               const std::vector<uint64_t>& probes) {
  {  // untimed warmup: every arm starts with the table equally warm
    uint64_t v, w = 0;
    for (const uint64_t key : probes) w += table.Find(key, &v);
    benchmark::DoNotOptimize(w);
  }
  for (auto _ : state) {
    uint64_t hits = 0, sum = 0;
    for (const uint64_t key : probes) {
      uint64_t v;
      if (table.Find(key, &v)) {
        ++hits;
        sum += v;
      }
    }
    benchmark::DoNotOptimize(hits);
    benchmark::DoNotOptimize(sum);
  }
  state.counters["Mlookups_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

/// group != 0 pins the batched kernel's width (and, for ChainedTable,
/// forces the ring past the footprint gate): a static arm. group == 0 is
/// the adaptive arm: gate + calibrated knobs decide per batch.
template <typename Table>
void BM_Batch(benchmark::State& state, const Table& table,
              const std::vector<uint64_t>& probes, uint32_t group) {
  std::vector<uint64_t> values(probes.size());
  {  // untimed warmup: the adaptive arm's calibration pass just evicted
     // the fixture table; without this the static arms start warmer
    benchmark::DoNotOptimize(table.FindBatch(probes.data(), probes.size(),
                                             values.data(), nullptr, group));
  }
  for (auto _ : state) {
    const size_t hits = table.FindBatch(probes.data(), probes.size(),
                                        values.data(), nullptr, group);
    benchmark::DoNotOptimize(hits);
    benchmark::DoNotOptimize(values.data());
  }
  state.counters["group"] = group;
  state.counters["Mlookups_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

/// "linear/l2/gp_g8/iterations:3/repeats:3_median" -> "linear/l2/gp_g8",
/// or empty for non-median rows (the mean/stddev/cv aggregates).
std::string MedianArmName(const std::string& name) {
  if (name.size() < 7 || name.compare(name.size() - 7, 7, "_median") != 0) {
    return {};
  }
  return name.substr(0, name.find("/iterations:"));
}

/// Median-of-repetitions throughput per arm — the raw results table.
void PrintMedianTable(const hwstar::bench::CollectingReporter& reporter) {
  hwstar::perf::ReportTable table(
      "E22: self-tuning across workload phases (median of 3 repetitions)",
      {"arm", "seconds", "Mlookups_per_s"});
  for (const auto& run : reporter.captured()) {
    const std::string arm = MedianArmName(run.name);
    if (arm.empty()) continue;
    const auto it = run.counters.find("Mlookups_per_s");
    table.AddRow({arm, hwstar::perf::ReportTable::Num(run.real_seconds),
                  hwstar::perf::ReportTable::Num(
                      it == run.counters.end() ? 0.0 : it->second)});
  }
  table.Print();
}

/// Per phase and family: adaptive vs the best and worst static arm.
/// adaptive_vs_best <= ~1.05 everywhere and worst_vs_adaptive >= 1.3
/// somewhere is the experiment's acceptance shape.
void PrintAdaptiveSummary(const hwstar::bench::CollectingReporter& reporter) {
  hwstar::perf::ReportTable table(
      "E22: adaptive vs static (time ratios; <=1 means adaptive wins)",
      {"family/phase", "adaptive_vs_best", "worst_vs_adaptive",
       "best_static", "worst_static"});
  const auto& runs = reporter.captured();
  for (const char* family : {"linear", "chained"}) {
    for (const Phase& phase : kPhases) {
      const std::string prefix =
          std::string(family) + "/" + phase.label + "/";
      double adaptive = 0, best = 0, worst = 0;
      std::string best_name, worst_name;
      for (const auto& run : runs) {
        const std::string name = MedianArmName(run.name);
        if (name.rfind(prefix, 0) != 0 || name.empty()) continue;
        const std::string arm = name.substr(prefix.size());
        if (arm == "adaptive") {
          adaptive = run.real_seconds;
        } else if (best == 0 || run.real_seconds < best) {
          best = run.real_seconds;
          best_name = arm;
        }
        if (arm != "adaptive" && run.real_seconds > worst) {
          worst = run.real_seconds;
          worst_name = arm;
        }
      }
      if (adaptive == 0 || best == 0) continue;
      table.AddRow({prefix, hwstar::perf::ReportTable::Num(adaptive / best),
                    hwstar::perf::ReportTable::Num(worst / adaptive),
                    best_name, worst_name});
    }
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  for (size_t p = 0; p < kNumPhases; ++p) {
    const std::string lp = std::string("linear/") + kPhases[p].label;
    const std::string cp = std::string("chained/") + kPhases[p].label;
    benchmark::RegisterBenchmark(
        (lp + "/scalar").c_str(),
        [p](benchmark::State& st) {
          BM_Scalar(st, *Get(p).linear, Get(p).probes);
        })
        ->Iterations(3)
        ->Repetitions(3)
        ->ReportAggregatesOnly(true);
    benchmark::RegisterBenchmark(
        (cp + "/scalar").c_str(),
        [p](benchmark::State& st) {
          BM_Scalar(st, *Get(p).chained, Get(p).probes);
        })
        ->Iterations(3)
        ->Repetitions(3)
        ->ReportAggregatesOnly(true);
    for (uint32_t g : {4u, 8u, 16u, 32u}) {
      benchmark::RegisterBenchmark(
          (lp + "/gp_g" + std::to_string(g)).c_str(),
          [p, g](benchmark::State& st) {
            BM_Batch(st, *Get(p).linear, Get(p).probes, g);
          })
          ->Iterations(3)
        ->Repetitions(3)
        ->ReportAggregatesOnly(true);
      benchmark::RegisterBenchmark(
          (cp + "/amac_k" + std::to_string(g)).c_str(),
          [p, g](benchmark::State& st) {
            BM_Batch(st, *Get(p).chained, Get(p).probes, g);
          })
          ->Iterations(3)
        ->Repetitions(3)
        ->ReportAggregatesOnly(true);
    }
    // The adaptive arm: calibrate on the phase, then let the kernels
    // read the registry (group 0).
    benchmark::RegisterBenchmark(
        (lp + "/adaptive").c_str(),
        [p](benchmark::State& st) {
          CalibrateForPhase(p);
          BM_Batch(st, *Get(p).linear, Get(p).probes, 0);
        })
        ->Iterations(3)
        ->Repetitions(3)
        ->ReportAggregatesOnly(true);
    benchmark::RegisterBenchmark(
        (cp + "/adaptive").c_str(),
        [p](benchmark::State& st) {
          CalibrateForPhase(p);
          BM_Batch(st, *Get(p).chained, Get(p).probes, 0);
        })
        ->Iterations(3)
        ->Repetitions(3)
        ->ReportAggregatesOnly(true);
  }

  hwstar::bench::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  PrintMedianTable(reporter);
  PrintAdaptiveSummary(reporter);
  hwstar::tune::Registry::Global().ResetAll();
  benchmark::Shutdown();
  return 0;
}
