#!/usr/bin/env bash
# Smoke-runs a google-benchmark binary: executes only its first registered
# benchmark (the binaries pin Iterations(3), so one family is seconds, the
# full suite is minutes). Catches link/registration/fixture breakage in CI
# without paying for a full measurement run.
set -euo pipefail

bin="$1"

first="$("$bin" --benchmark_list_tests=true | head -n 1)"
if [ -z "$first" ]; then
  echo "bench_smoke: $bin lists no benchmarks" >&2
  exit 1
fi

# Anchor the filter to exactly the first benchmark, escaping regex
# metacharacters in its name (names use '/', which is literal, but also
# e.g. '+' or ':' in modifier suffixes).
escaped="$(printf '%s' "$first" | sed -e 's/[][\.|$(){}?+*^]/\\&/g')"
exec "$bin" "--benchmark_filter=^${escaped}\$"
