// E12 -- the OLTP side of hardware-consciousness: point-access throughput
// of the embedded KV store under a YCSB-shaped mix, sweeping index
// structure (ART vs. B+-tree), shard count, skew and read fraction.
// Expected shape: ART leads the B+-tree on point ops (bounded-depth trie
// vs. log-depth tree); more shards raise multi-threaded throughput until
// the core count caps it; skew concentrates traffic on one shard's latch
// and flattens the scaling -- the same contention story the paper tells
// for multicore software generally.

#include <benchmark/benchmark.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/workload/ycsb_like.h"

namespace {

using hwstar::kv::IndexKind;
using hwstar::kv::KvOptions;
using hwstar::kv::KvStore;

constexpr uint64_t kRecords = 1 << 20;
constexpr uint64_t kOps = 1 << 20;

const std::vector<hwstar::workload::YcsbRequest>& Ops(double theta,
                                                      double read_fraction) {
  static std::map<std::pair<int, int>,
                  std::unique_ptr<std::vector<hwstar::workload::YcsbRequest>>>
      cache;
  auto key = std::make_pair(static_cast<int>(theta * 100),
                            static_cast<int>(read_fraction * 100));
  auto& slot = cache[key];
  if (slot == nullptr) {
    hwstar::workload::YcsbConfig cfg;
    cfg.record_count = kRecords;
    cfg.operation_count = kOps;
    cfg.read_fraction = read_fraction;
    cfg.zipf_theta = theta;
    slot = std::make_unique<std::vector<hwstar::workload::YcsbRequest>>(
        hwstar::workload::MakeYcsbWorkload(cfg));
  }
  return *slot;
}

void BM_Ycsb(benchmark::State& state, IndexKind index, uint32_t shards,
             uint32_t threads, double theta, double read_fraction) {
  KvOptions opts;
  opts.index = index;
  opts.shards = shards;
  KvStore store(opts);
  for (uint64_t k = 0; k < kRecords; ++k) store.Put(k, k);
  const auto& ops = Ops(theta, read_fraction);

  for (auto _ : state) {
    std::vector<std::thread> workers;
    std::atomic<uint64_t> sink{0};
    const uint64_t per_thread = ops.size() / threads;
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        uint64_t local = 0;
        const uint64_t begin = t * per_thread;
        const uint64_t end = begin + per_thread;
        for (uint64_t i = begin; i < end; ++i) {
          if (ops[i].op == hwstar::workload::YcsbOp::kRead) {
            local += store.Get(ops[i].key).value_or(0);
          } else {
            store.Put(ops[i].key, i);
          }
        }
        sink.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (auto& w : workers) w.join();
    benchmark::DoNotOptimize(sink.load());
  }
  state.counters["shards"] = shards;
  state.counters["threads"] = threads;
  state.counters["zipf"] = theta;
  state.counters["read_frac"] = read_fraction;
  state.counters["Mops_per_s"] = benchmark::Counter(
      static_cast<double>(kOps) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  // Index comparison, single-threaded.
  benchmark::RegisterBenchmark("art/1t", BM_Ycsb, IndexKind::kArt, 1u, 1u,
                               0.6, 0.95)
      ->Iterations(2)->UseRealTime();
  benchmark::RegisterBenchmark("btree/1t", BM_Ycsb, IndexKind::kBTree, 1u, 1u,
                               0.6, 0.95)
      ->Iterations(2)->UseRealTime();
  // Shard scaling with 2 threads, uniform and skewed.
  for (uint32_t shards : {1u, 2u, 8u}) {
    benchmark::RegisterBenchmark("art/2t/uniform", BM_Ycsb, IndexKind::kArt,
                                 shards, 2u, 0.0, 0.95)
        ->Iterations(2)->UseRealTime();
    benchmark::RegisterBenchmark("art/2t/zipf.9", BM_Ycsb, IndexKind::kArt,
                                 shards, 2u, 0.9, 0.95)
        ->Iterations(2)->UseRealTime();
  }
  // Write-heavy mix.
  benchmark::RegisterBenchmark("art/2t/writeheavy", BM_Ycsb, IndexKind::kArt,
                               8u, 2u, 0.6, 0.5)
      ->Iterations(2)->UseRealTime();
  return hwstar::bench::RunBenchMain(
      argc, argv, "E12: YCSB over the KV store (1M records, 1M ops)",
      {"shards", "threads", "zipf", "read_frac", "Mops_per_s"});
}
