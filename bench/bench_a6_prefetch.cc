// A6 (ablation) -- explicit memory-level parallelism in the probe phase.
// Random probes of a DRAM-resident (64MB) hash table, with software
// prefetching of the home slot `distance` keys ahead
// (CountMatchesBatch's distance-pipelined knob). Expected shape:
// throughput rises from distance 0 as more misses are put in flight
// explicitly, peaks around the machine's miss-queue depth (~8-16), and
// declines slowly beyond it (prefetches evicted before use). On an
// in-cache table the prefetch is pure overhead -- the knob only matters
// when the structure misses, which is the paper's point: the right code
// depends on where the data lands in the hierarchy. This sweep is the
// *ablation* that exposes the machine's miss-queue depth; the production
// batched kernels are the group-prefetch / AMAC FindBatch & ProbeBatch
// family built on ops/probe_kernels.h, whose group-size analogue of this
// sweep is measured end to end in bench_e18_mlp_probe. Also includes the
// CAS-parallel shared build vs serial build.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "hwstar/exec/executor.h"
#include "hwstar/ops/concurrent_hash_table.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/workload/distributions.h"

namespace {

using hwstar::ops::ConcurrentHashTable;
using hwstar::ops::LinearProbeTable;

constexpr uint64_t kBigBuild = 1 << 21;    // 64MB table: DRAM
constexpr uint64_t kSmallBuild = 1 << 14;  // 512KB table: cache-resident
constexpr uint64_t kProbes = 4 << 20;

struct Tables {
  std::unique_ptr<LinearProbeTable> big;
  std::unique_ptr<LinearProbeTable> small;
  std::vector<uint64_t> big_probes;
  std::vector<uint64_t> small_probes;
};

const Tables& Get() {
  static Tables* t = [] {
    auto* tables = new Tables();
    auto big_rel = hwstar::workload::MakeBuildRelation(kBigBuild, 71);
    tables->big = std::make_unique<LinearProbeTable>(kBigBuild);
    for (uint64_t i = 0; i < kBigBuild; ++i) {
      tables->big->Insert(big_rel.keys[i], big_rel.payloads[i]);
    }
    auto small_rel = hwstar::workload::MakeBuildRelation(kSmallBuild, 72);
    tables->small = std::make_unique<LinearProbeTable>(kSmallBuild);
    for (uint64_t i = 0; i < kSmallBuild; ++i) {
      tables->small->Insert(small_rel.keys[i], small_rel.payloads[i]);
    }
    tables->big_probes = hwstar::workload::UniformKeys(kProbes, kBigBuild, 73);
    tables->small_probes =
        hwstar::workload::UniformKeys(kProbes, kSmallBuild, 74);
    return tables;
  }();
  return *t;
}

void BM_PrefetchProbe(benchmark::State& state, bool big_table) {
  const uint32_t distance = static_cast<uint32_t>(state.range(0));
  const Tables& t = Get();
  const LinearProbeTable& table = big_table ? *t.big : *t.small;
  const auto& probes = big_table ? t.big_probes : t.small_probes;
  for (auto _ : state) {
    uint64_t matches =
        table.CountMatchesBatch(probes.data(), probes.size(), distance);
    benchmark::DoNotOptimize(matches);
  }
  state.counters["distance"] = distance;
  state.counters["table_mb"] =
      static_cast<double>(table.MemoryBytes()) / (1 << 20);
  state.counters["Mprobes_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Build(benchmark::State& state, bool parallel) {
  auto rel = hwstar::workload::MakeBuildRelation(kBigBuild, 75);
  hwstar::exec::Executor pool(2);
  for (auto _ : state) {
    if (parallel) {
      ConcurrentHashTable table(kBigBuild);
      const uint64_t half = kBigBuild / 2;
      pool.Submit([&](uint32_t) {
        for (uint64_t i = 0; i < half; ++i) {
          table.Insert(rel.keys[i], rel.payloads[i]);
        }
      });
      pool.Submit([&](uint32_t) {
        for (uint64_t i = half; i < kBigBuild; ++i) {
          table.Insert(rel.keys[i], rel.payloads[i]);
        }
      });
      pool.WaitIdle();
      benchmark::DoNotOptimize(table.size());
    } else {
      LinearProbeTable table(kBigBuild);
      for (uint64_t i = 0; i < kBigBuild; ++i) {
        table.Insert(rel.keys[i], rel.payloads[i]);
      }
      benchmark::DoNotOptimize(table.size());
    }
  }
  state.counters["Mbuilds_per_s"] = benchmark::Counter(
      static_cast<double>(kBigBuild) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  Get();
  for (int64_t d : {0, 1, 2, 4, 8, 16, 32, 64}) {
    benchmark::RegisterBenchmark(
        "probe/dram", [](benchmark::State& s) { BM_PrefetchProbe(s, true); })
        ->Arg(d)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        "probe/cached", [](benchmark::State& s) { BM_PrefetchProbe(s, false); })
        ->Arg(d)
        ->Iterations(3);
  }
  benchmark::RegisterBenchmark(
      "build/serial", [](benchmark::State& s) { BM_Build(s, false); })
      ->Iterations(3)
      ->UseRealTime();
  benchmark::RegisterBenchmark(
      "build/cas2t", [](benchmark::State& s) { BM_Build(s, true); })
      ->Iterations(3)
      ->UseRealTime();
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "A6: software prefetch distance in hash probes; CAS-parallel build",
      {"distance", "table_mb", "Mprobes_per_s", "Mbuilds_per_s"});
}
