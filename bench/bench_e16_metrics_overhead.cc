// E16 -- the observer effect: what recording a latency sample costs. The
// old svc::LatencyRecorder took a global mutex per completion and kept
// every sample forever; the obs-backed recorder bumps relaxed atomics on
// a per-thread, cache-line-padded shard of a bounded log-linear
// histogram. This bench measures both on the multi-threaded completion
// path the service actually runs:
//   mutex  -- a faithful replica of the old recorder (mutex + unbounded
//             per-phase vectors, snapshot = copy + sort)
//   obs    -- svc::LatencyRecorder as shipped (obs::Histogram per phase)
// Four views, because the old recorder loses on more than one axis:
//   1. raw recording throughput vs thread count (on multi-core hardware
//      the mutex line ping-pongs and throughput falls as threads rise;
//      sharded relaxed atomics scale near-linearly);
//   2. recording throughput while a scraper polls the metrics -- the old
//      snapshot copies the unbounded vector *under the recording lock*
//      and then sorts it, stalling completions and burning a core;
//   3. scrape latency as samples accumulate -- O(n log n) and growing
//      for the old recorder, constant microseconds for obs;
//   4. what the bounded histogram gives up for all that: reported
//      quantiles versus exact nearest-rank on a reference distribution
//      (the bucket error bound, <1% at the midpoint), from a fixed
//      few-KB footprint.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "hwstar/common/timer.h"
#include "hwstar/obs/histogram.h"
#include "hwstar/perf/report.h"
#include "hwstar/svc/metrics.h"
#include "hwstar/svc/request.h"

namespace {

using hwstar::WallTimer;
using hwstar::perf::ReportTable;
using hwstar::svc::LatencyBreakdown;
using hwstar::svc::LatencyRecorder;
using hwstar::svc::LatencySnapshot;
using hwstar::svc::Phase;

constexpr double kTrialSeconds = 0.4;

/// The old recorder, kept verbatim as the baseline: one mutex around
/// unbounded per-phase sample vectors; snapshots copy and sort.
class MutexRecorder {
 public:
  void Record(const LatencyBreakdown& b) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_[0].push_back(b.admit_wait_nanos);
    samples_[1].push_back(b.batch_wait_nanos);
    samples_[2].push_back(b.exec_nanos);
    samples_[3].push_back(b.total_nanos);
    if (b.wal_nanos != 0) samples_[4].push_back(b.wal_nanos);
  }

  LatencySnapshot Snapshot(int phase) const {
    std::vector<uint64_t> sorted;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      sorted = samples_[phase];
    }
    LatencySnapshot snap;
    if (sorted.empty()) return snap;
    std::sort(sorted.begin(), sorted.end());
    snap.count = sorted.size();
    snap.p50 = sorted[hwstar::obs::NearestRankIndex(0.50, sorted.size())];
    snap.p90 = sorted[hwstar::obs::NearestRankIndex(0.90, sorted.size())];
    snap.p99 = sorted[hwstar::obs::NearestRankIndex(0.99, sorted.size())];
    snap.max = sorted.back();
    double sum = 0;
    for (uint64_t s : sorted) sum += static_cast<double>(s);
    snap.mean = sum / static_cast<double>(sorted.size());
    return snap;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<uint64_t> samples_[5];
};

LatencyBreakdown MakeBreakdown(uint64_t i) {
  LatencyBreakdown b;
  b.admit_wait_nanos = 1000 + (i % 977);
  b.batch_wait_nanos = 5000 + (i % 4093);
  b.exec_nanos = 20000 + (i % 16381);
  b.total_nanos = b.admit_wait_nanos + b.batch_wait_nanos + b.exec_nanos;
  b.wal_nanos = 0;
  return b;
}

/// `threads` workers call `record` in a tight loop for kTrialSeconds;
/// returns total records per second. If `scrape` is non-null an extra
/// thread invokes it every 5 ms, like a metrics endpoint being polled.
template <typename Recorder, typename Scrape>
double RunTrial(Recorder* recorder, int threads, Scrape* scrape) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads) + 1);
  WallTimer timer;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t n = 0;
      for (uint64_t i = static_cast<uint64_t>(t) << 32;
           !stop.load(std::memory_order_relaxed); ++i, ++n) {
        recorder->Record(MakeBreakdown(i));
      }
      total.fetch_add(n);
    });
  }
  if (scrape != nullptr) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (*scrape)();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  while (timer.ElapsedSeconds() < kTrialSeconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  return static_cast<double>(total.load()) / timer.ElapsedSeconds();
}

template <typename Recorder>
double RunTrial(Recorder* recorder, int threads) {
  return RunTrial(recorder, threads, static_cast<void (*)()>(nullptr));
}

void ThroughputTable(bool scraped) {
  ReportTable table(
      scraped ? "E16: recording throughput with a 5ms metrics scraper, "
                "mutex recorder vs obs (Mrec/s)"
              : "E16: raw recording throughput, mutex recorder vs obs "
                "(Mrec/s, all phases per record)",
      {"threads", "mutex_mrec_s", "obs_mrec_s", "speedup"});
  const unsigned hc = std::thread::hardware_concurrency();
  for (int threads : {1, 2, 4, 8, 16}) {
    if (static_cast<unsigned>(threads) > std::max(4u, 2 * hc)) break;
    double mutex_rate;
    {
      // Fresh recorder per trial: the mutex baseline's vectors otherwise
      // grow across trials (that unbounded growth is the bug under test).
      MutexRecorder mutex_recorder;
      auto scrape = [&mutex_recorder] {
        for (int phase = 0; phase < 5; ++phase) mutex_recorder.Snapshot(phase);
      };
      mutex_rate = scraped ? RunTrial(&mutex_recorder, threads, &scrape)
                           : RunTrial(&mutex_recorder, threads);
    }
    double obs_rate;
    {
      LatencyRecorder obs_recorder;
      auto scrape = [&obs_recorder] {
        for (auto phase : {Phase::kAdmitWait, Phase::kBatchWait, Phase::kExec,
                           Phase::kTotal, Phase::kWal}) {
          obs_recorder.Snapshot(phase);
        }
      };
      obs_rate = scraped ? RunTrial(&obs_recorder, threads, &scrape)
                         : RunTrial(&obs_recorder, threads);
    }
    table.AddRow({std::to_string(threads),
                  ReportTable::Num(mutex_rate * 1e-6),
                  ReportTable::Num(obs_rate * 1e-6),
                  ReportTable::Num(obs_rate / mutex_rate)});
  }
  table.Print();
}

void ScrapeLatencyTable() {
  ReportTable table(
      "E16: full 5-phase scrape latency vs accumulated samples "
      "(milliseconds per scrape)",
      {"samples", "mutex_ms", "obs_ms", "ratio"});
  for (size_t n : {size_t{100000}, size_t{1000000}, size_t{4000000}}) {
    MutexRecorder mutex_recorder;
    LatencyRecorder obs_recorder;
    for (size_t i = 0; i < n; ++i) {
      const LatencyBreakdown b = MakeBreakdown(i);
      mutex_recorder.Record(b);
      obs_recorder.Record(b);
    }
    WallTimer timer;
    for (int phase = 0; phase < 5; ++phase) mutex_recorder.Snapshot(phase);
    const double mutex_ms = static_cast<double>(timer.ElapsedNanos()) * 1e-6;
    timer.Restart();
    for (auto phase : {Phase::kAdmitWait, Phase::kBatchWait, Phase::kExec,
                       Phase::kTotal, Phase::kWal}) {
      obs_recorder.Snapshot(phase);
    }
    const double obs_ms = static_cast<double>(timer.ElapsedNanos()) * 1e-6;
    table.AddRow({std::to_string(n), ReportTable::Num(mutex_ms),
                  ReportTable::Num(obs_ms),
                  ReportTable::Num(mutex_ms / obs_ms)});
  }
  table.Print();
}

void AccuracyTable() {
  // A heavy-tailed reference distribution (lognormal service times).
  std::mt19937_64 rng(1234);
  std::lognormal_distribution<double> dist(11.0, 1.6);
  constexpr size_t kSamples = 1000000;
  std::vector<uint64_t> values;
  values.reserve(kSamples);
  hwstar::obs::Histogram hist;
  for (size_t i = 0; i < kSamples; ++i) {
    const auto v = static_cast<uint64_t>(dist(rng)) + 1;
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  const hwstar::obs::HistogramSnapshot snap = hist.Snapshot();

  ReportTable table(
      "E16: merged-snapshot quantiles vs exact nearest-rank, 1M lognormal "
      "samples",
      {"quantile", "exact_us", "obs_us", "rel_err_pct"});
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const uint64_t exact =
        values[hwstar::obs::NearestRankIndex(q, values.size())];
    const uint64_t approx = snap.Quantile(q);
    const double rel = std::abs(static_cast<double>(approx) -
                                static_cast<double>(exact)) /
                       static_cast<double>(exact);
    char label[16];
    std::snprintf(label, sizeof(label), "p%g", q * 100);
    table.AddRow({label, ReportTable::Num(static_cast<double>(exact) * 1e-3),
                  ReportTable::Num(static_cast<double>(approx) * 1e-3),
                  ReportTable::Num(rel * 100.0)});
  }
  table.Print();

  std::printf(
      "obs histogram footprint: %zu bytes for %zu samples "
      "(%u buckets x %u shards; the exact recorder would hold %zu MB)\n",
      hist.allocated_bytes(), kSamples, hist.layout().num_buckets(),
      hist.shards(), kSamples * sizeof(uint64_t) >> 20);
}

}  // namespace

int main() {
  ThroughputTable(/*scraped=*/false);
  ThroughputTable(/*scraped=*/true);
  ScrapeLatencyTable();
  AccuracyTable();
  return 0;
}
