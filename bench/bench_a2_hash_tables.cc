// A2 (ablation) -- hash table organization. Probe-heavy workload over
// (a) flat linear-probing at varying fill and (b) a chained table.
// The linear-probing capacity is pinned at 2^21 slots (32MB: out of LLC)
// and the build count varied, so the *effective* load factor actually
// sweeps (power-of-two capacity rounding would otherwise quantize it).
// Expected shape: linear probing beats chaining at moderate fill (no
// pointer chasing: a probe touches 1-2 adjacent lines); its probe cost
// grows steeply past ~0.7 fill as occupied-slot runs lengthen, while
// chaining degrades more gently but from a worse, dependent-miss-bound
// baseline.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/workload/distributions.h"

namespace {

using hwstar::ops::ChainedTable;
using hwstar::ops::LinearProbeTable;

constexpr uint64_t kCapacity = 1 << 21;  // fixed slot count
constexpr uint64_t kProbes = 4 << 20;

void BM_LinearProbe(benchmark::State& state) {
  const double lf = static_cast<double>(state.range(0)) / 100.0;
  const uint64_t build = static_cast<uint64_t>(lf * kCapacity);
  // expected/load_factor == kCapacity exactly -> capacity == kCapacity.
  LinearProbeTable table(build, lf);
  auto keys = hwstar::workload::ShuffledDenseKeys(build, 41);
  for (uint64_t k : keys) table.Insert(k, k);

  auto probes = hwstar::workload::UniformKeys(kProbes, build, 42);
  for (auto _ : state) {
    uint64_t matches = 0;
    for (uint64_t k : probes) matches += table.CountMatches(k);
    benchmark::DoNotOptimize(matches);
  }
  std::vector<uint64_t> sample(probes.begin(), probes.begin() + 10000);
  state.counters["load_factor"] =
      static_cast<double>(table.size()) / static_cast<double>(table.capacity());
  state.counters["avg_probe_len"] = table.MeasureAvgProbeLength(sample);
  state.counters["table_mb"] =
      static_cast<double>(table.MemoryBytes()) / (1 << 20);
  state.counters["Mprobes_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Chained(benchmark::State& state) {
  const uint64_t build = kCapacity / 2;  // comparable to LF 0.5
  ChainedTable table(build);
  auto keys = hwstar::workload::ShuffledDenseKeys(build, 41);
  for (uint64_t k : keys) table.Insert(k, k);
  auto probes = hwstar::workload::UniformKeys(kProbes, build, 42);
  for (auto _ : state) {
    uint64_t matches = 0;
    for (uint64_t k : probes) matches += table.CountMatches(k);
    benchmark::DoNotOptimize(matches);
  }
  std::vector<uint64_t> sample(probes.begin(), probes.begin() + 10000);
  state.counters["load_factor"] = 0.5;
  state.counters["avg_probe_len"] = table.MeasureAvgProbeLength(sample);
  state.counters["table_mb"] =
      static_cast<double>(table.MemoryBytes()) / (1 << 20);
  state.counters["Mprobes_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  for (int64_t lf : {25, 50, 70, 80, 90, 95}) {
    benchmark::RegisterBenchmark("linear", BM_LinearProbe)
        ->Arg(lf)
        ->Iterations(3);
  }
  benchmark::RegisterBenchmark("chained", BM_Chained)->Iterations(3);
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "A2: hash table organization at fixed 2^21-slot capacity, 4M probes",
      {"load_factor", "avg_probe_len", "table_mb", "Mprobes_per_s"});
}
