// E20 -- what the shard latch costs readers: point-read throughput vs.
// core count, latched reads against the hwstar::sync optimistic path
// (OLC descent + epoch-based reclamation). Expected shape: with latched
// reads every Get bounces the shard mutex's cache line, so read-only
// throughput plateaus (or degrades) as threads grow and skew concentrates
// on few shards; latch-free reads write no shared line and keep scaling
// with cores, at identical results (the bit-identity tests pin that
// down). The 95/5 mix shows the same split with a live writer in the
// loop, and the epoch counters report what the deferral costs in memory
// high-water terms -- the reclamation bill for reader scalability.

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "hwstar/common/random.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/sync/epoch.h"

namespace {

using hwstar::Xoshiro256;
using hwstar::kv::IndexKind;
using hwstar::kv::KvOptions;
using hwstar::kv::KvStore;

constexpr uint64_t kRecords = 1 << 20;
constexpr uint64_t kOpsPerThread = 1 << 18;

void BM_ReadScaling(benchmark::State& state, IndexKind index, bool latch_free,
                    uint32_t threads, double write_frac) {
  KvOptions opts;
  opts.index = index;
  opts.shards = 8;
  opts.latch_free_reads = latch_free;
  KvStore store(opts);
  const uint64_t stride = ~uint64_t{0} / kRecords;
  for (uint64_t k = 0; k < kRecords; ++k) store.Put(k * stride, k);

  const auto hwm_before =
      hwstar::sync::EpochManager::Global().stats().retired_bytes_hwm;
  const uint32_t write_permille = static_cast<uint32_t>(write_frac * 1000.0);

  for (auto _ : state) {
    std::vector<std::thread> workers;
    std::atomic<uint64_t> sink{0};
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Xoshiro256 rng(0x9e37 + t);
        uint64_t local = 0;
        for (uint64_t i = 0; i < kOpsPerThread; ++i) {
          const uint64_t key = rng.NextBounded(kRecords) * stride;
          if (write_permille != 0 && rng.NextBounded(1000) < write_permille) {
            // Half the writes delete (and a later write re-inserts): this
            // is what makes the index retire nodes, so the epoch_hwm_kb
            // counter reports a real reclamation bill, not zero.
            if (rng.NextBounded(2) == 0) {
              store.Delete(key);
            } else {
              store.Put(key, i);
            }
          } else {
            local += store.Get(key).value_or(0);
          }
        }
        sink.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (auto& w : workers) w.join();
    benchmark::DoNotOptimize(sink.load());
  }

  const auto epoch_stats = hwstar::sync::EpochManager::Global().stats();
  state.counters["threads"] = threads;
  state.counters["latch_free"] = latch_free ? 1 : 0;
  state.counters["write_frac"] = write_frac;
  state.counters["epoch_hwm_kb"] =
      static_cast<double>(epoch_stats.retired_bytes_hwm - hwm_before) / 1024.0;
  state.counters["Mops_per_s"] = benchmark::Counter(
      static_cast<double>(kOpsPerThread) * threads * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void RegisterSweep(const char* tag, IndexKind index, double write_frac) {
  const uint32_t cores = std::thread::hardware_concurrency();
  for (uint32_t threads : {1u, 2u, 4u, 8u, 16u}) {
    if (threads > cores && threads != 1) break;
    for (const bool latch_free : {false, true}) {
      std::string name = std::string(tag) + "/" +
                         (latch_free ? "olc" : "latched") + "/" +
                         std::to_string(threads) + "t";
      benchmark::RegisterBenchmark(name.c_str(), BM_ReadScaling, index,
                                   latch_free, threads, write_frac)
          ->Iterations(2)
          ->UseRealTime();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterSweep("art/read_only", IndexKind::kArt, 0.0);
  RegisterSweep("art/95_5", IndexKind::kArt, 0.05);
  RegisterSweep("btree/read_only", IndexKind::kBTree, 0.0);
  RegisterSweep("btree/95_5", IndexKind::kBTree, 0.05);
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E20: point-read scaling, latched vs latch-free (OLC + epochs)",
      {"threads", "latch_free", "write_frac", "epoch_hwm_kb", "Mops_per_s"});
}
