// E19 -- streaming on the Executor. Two questions:
//
//   agg/rows*      How does micro-batch size trade ingest throughput
//                  against window-emission latency? Small batches pay
//                  dispatch/partitioning overhead per row; large batches
//                  amortize it but hold results back until the batch's
//                  watermark arrives, so p99 emission latency climbs.
//
//   join/<size>/*  Does the streaming hash join inherit the E18
//                  memory-level-parallelism win? The same stream probes a
//                  build table at L2-resident and DRAM-resident sizes,
//                  through the scalar probe loop, the batched GP kernel,
//                  and the Bloom-prefiltered batched path. Expected shape:
//                  variants tie while the table is cache-resident and the
//                  batched kernels pull ahead once probes miss to DRAM.
//
// A speedup summary (batched vs scalar per size class) prints at the end;
// pass --benchmark_format=json for raw JSON.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hwstar/common/random.h"
#include "hwstar/exec/executor.h"
#include "hwstar/perf/report.h"
#include "hwstar/stream/join.h"
#include "hwstar/stream/pipeline.h"
#include "hwstar/stream/source.h"
#include "hwstar/stream/window.h"
#include "hwstar/workload/ycsb_like.h"

namespace {

using hwstar::exec::Executor;
using hwstar::stream::BackpressurePolicy;
using hwstar::stream::EventTimeOptions;
using hwstar::stream::Pipeline;
using hwstar::stream::PipelineBuilder;
using hwstar::stream::PipelineOptions;
using hwstar::stream::Sink;
using hwstar::stream::StreamBatch;
using hwstar::stream::StreamJoinOptions;
using hwstar::stream::StreamTableJoin;
using hwstar::stream::WindowAggregator;
using hwstar::stream::WindowResult;
using hwstar::stream::WindowSpec;
using hwstar::stream::YcsbSource;

constexpr uint64_t kStreamRows = 1 << 20;
constexpr uint32_t kWorkers = 4;

/// Consumes output without retaining it; keeps the sink off the profile.
class NullSink : public Sink {
 public:
  void OnBatch(uint32_t /*partition*/, const StreamBatch& batch) override {
    rows_.fetch_add(batch.size(), std::memory_order_relaxed);
  }
  void OnWindows(uint32_t /*partition*/,
                 const std::vector<WindowResult>& results) override {
    rows_.fetch_add(results.size(), std::memory_order_relaxed);
  }
  uint64_t rows() const { return rows_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> rows_{0};
};

hwstar::workload::YcsbConfig StreamConfig(uint64_t key_space) {
  hwstar::workload::YcsbConfig cfg;
  cfg.record_count = key_space;
  cfg.operation_count = kStreamRows;
  cfg.zipf_theta = 0.0;  // uniform: hit rate = build coverage exactly
  cfg.seed = 77;
  return cfg;
}

// ---------------------------------------------------------------------------
// agg/rows<N>: windowed aggregation throughput and emission latency vs
// micro-batch size.

void BM_WindowedAgg(benchmark::State& state, uint32_t batch_rows) {
  EventTimeOptions time;
  time.max_disorder = 256;
  uint64_t p50 = 0, p99 = 0;
  for (auto _ : state) {
    Executor executor(kWorkers);
    YcsbSource source(StreamConfig(1 << 16), time);
    WindowAggregator agg(WindowSpec::Tumbling(8192));
    NullSink sink;
    PipelineOptions opts;
    opts.partitions = kWorkers;
    opts.batch_rows = batch_rows;
    opts.lateness_bound = 256;
    auto pipeline = PipelineBuilder(&executor)
                        .From(&source)
                        .Aggregate(&agg)
                        .To(&sink)
                        .With(opts)
                        .Build();
    pipeline->Run();
    benchmark::DoNotOptimize(sink.rows());
    const auto snap = pipeline->emit_latency_histogram().Snapshot();
    p50 = snap.Quantile(0.50);
    p99 = snap.Quantile(0.99);
  }
  state.counters["batch_rows"] = batch_rows;
  state.counters["Mrows_per_s"] = benchmark::Counter(
      static_cast<double>(kStreamRows) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["emit_p50_us"] = static_cast<double>(p50) * 1e-3;
  state.counters["emit_p99_us"] = static_cast<double>(p99) * 1e-3;
}

// ---------------------------------------------------------------------------
// join/<size>/<variant>: streaming hash join probing through scalar vs
// batched kernels at two build residencies.

struct BuildSide {
  std::vector<uint64_t> keys;
  std::vector<int64_t> payloads;
};

/// Build keys 0..n-1 (dense); the stream draws uniformly from a key space
/// twice as large, so half the probes hit.
const BuildSide& GetBuild(uint64_t n) {
  static BuildSide l2, dram;
  BuildSide& b = n <= (1 << 13) ? l2 : dram;
  if (b.keys.empty()) {
    b.keys.resize(n);
    b.payloads.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      b.keys[i] = i;
      b.payloads[i] = static_cast<int64_t>(i * 31 + 7);
    }
  }
  return b;
}

void BM_StreamJoin(benchmark::State& state, uint64_t build_n,
                   const StreamJoinOptions& jopts) {
  const BuildSide& build = GetBuild(build_n);
  StreamTableJoin join(build.keys.data(), build.payloads.data(),
                       build.keys.size(), jopts);
  EventTimeOptions time;
  uint64_t matched = 0;
  for (auto _ : state) {
    Executor executor(kWorkers);
    YcsbSource source(StreamConfig(2 * build_n), time);
    NullSink sink;
    PipelineOptions opts;
    opts.partitions = kWorkers;
    opts.batch_rows = 4096;
    auto pipeline = PipelineBuilder(&executor)
                        .From(&source)
                        .Via(&join)
                        .To(&sink)
                        .With(opts)
                        .Build();
    pipeline->Run();
    matched = sink.rows();
    benchmark::DoNotOptimize(matched);
  }
  state.counters["table_mb"] =
      static_cast<double>(join.MemoryBytes()) / (1 << 20);
  state.counters["hit_pct"] =
      100.0 * static_cast<double>(matched) / static_cast<double>(kStreamRows);
  state.counters["Mrows_per_s"] = benchmark::Counter(
      static_cast<double>(kStreamRows) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

/// Rows are named join/<size>/<variant>; pairs each batched variant with
/// its size class's scalar row.
void PrintSpeedups(const hwstar::bench::CollectingReporter& reporter) {
  hwstar::perf::ReportTable table("E19 speedups: batched vs scalar join probe",
                                  {"config", "speedup_x"});
  auto strip = [](const std::string& name) {
    const size_t pos = name.find("/iterations:");
    return pos == std::string::npos ? name : name.substr(0, pos);
  };
  const auto& runs = reporter.captured();
  for (const auto& run : runs) {
    const std::string name = strip(run.name);
    if (name.rfind("join/", 0) != 0) continue;
    const size_t cut = name.rfind('/');
    if (name.substr(cut) == "/scalar") continue;
    const std::string scalar_name = name.substr(0, cut) + "/scalar";
    for (const auto& base : runs) {
      if (strip(base.name) == scalar_name && run.real_seconds > 0) {
        table.AddRow({name, hwstar::perf::ReportTable::Num(
                                base.real_seconds / run.real_seconds)});
        break;
      }
    }
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  for (uint32_t rows : {256u, 1024u, 4096u, 16384u}) {
    benchmark::RegisterBenchmark(
        ("agg/rows" + std::to_string(rows)).c_str(),
        [rows](benchmark::State& st) { BM_WindowedAgg(st, rows); })
        ->Iterations(3);
  }

  // 8K build entries -> 256KB of slots (L2-resident); 2M -> 64MB (DRAM).
  struct SizeClass {
    const char* label;
    uint64_t build;
  };
  constexpr SizeClass kSizes[] = {{"l2", 1 << 13}, {"dram", 1 << 21}};
  for (const auto& size : kSizes) {
    StreamJoinOptions scalar;
    scalar.use_batched_kernels = false;
    StreamJoinOptions batched;
    StreamJoinOptions bloomed;
    bloomed.bloom_prefilter = true;
    const struct {
      const char* label;
      StreamJoinOptions jopts;
    } kVariants[] = {
        {"scalar", scalar}, {"batched_gp", batched}, {"bloom_gp", bloomed}};
    for (const auto& v : kVariants) {
      const uint64_t n = size.build;
      const StreamJoinOptions jopts = v.jopts;
      benchmark::RegisterBenchmark(
          (std::string("join/") + size.label + "/" + v.label).c_str(),
          [n, jopts](benchmark::State& st) { BM_StreamJoin(st, n, jopts); })
          ->Iterations(3);
    }
  }

  hwstar::bench::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.PrintTable(
      "E19: streaming on the Executor",
      {"batch_rows", "emit_p50_us", "emit_p99_us", "table_mb", "hit_pct",
       "Mrows_per_s"});
  PrintSpeedups(reporter);
  benchmark::Shutdown();
  return 0;
}
