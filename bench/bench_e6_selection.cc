// E6 -- data-dependent branches waste the pipeline. The same selection
// (indices of values under a threshold) runs with a branching kernel, a
// branch-free (predicated) kernel, and a bitmap kernel across the
// selectivity spectrum. Expected shape: branching is fastest at the
// extremes (predictor nearly always right) and collapses around 50%
// selectivity; branch-free is flat everywhere; the crossover points --
// where flat beats branchy -- are the experiment's signature.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "hwstar/ops/selection.h"
#include "hwstar/tune/tunable.h"
#include "hwstar/workload/distributions.h"

namespace {

constexpr uint64_t kRows = 16'000'000;
constexpr int64_t kThreshold = 1000;
constexpr int64_t kMaxValue = 1'000'000;

const std::vector<int64_t>& Input(int sel_permille) {
  static std::map<int, std::unique_ptr<std::vector<int64_t>>> cache;
  auto& slot = cache[sel_permille];
  if (slot == nullptr) {
    slot = std::make_unique<std::vector<int64_t>>(
        hwstar::workload::MakeSelectionInput(
            kRows, sel_permille / 1000.0, kThreshold, kMaxValue,
            static_cast<uint64_t>(sel_permille)));
  }
  return *slot;
}

void SetCounters(benchmark::State& state, int sel_permille) {
  state.counters["selectivity"] = sel_permille / 1000.0;
  state.counters["Mrows_per_s"] = benchmark::Counter(
      static_cast<double>(kRows) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Branching(benchmark::State& state) {
  const int sel = static_cast<int>(state.range(0));
  const auto& v = Input(sel);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    uint64_t n = hwstar::ops::SelectBranching(v, 0, kThreshold, &out);
    benchmark::DoNotOptimize(n);
  }
  SetCounters(state, sel);
}

void BM_BranchFree(benchmark::State& state) {
  const int sel = static_cast<int>(state.range(0));
  const auto& v = Input(sel);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    uint64_t n = hwstar::ops::SelectBranchFree(v, 0, kThreshold, &out);
    benchmark::DoNotOptimize(n);
  }
  SetCounters(state, sel);
}

void BM_Bitmap(benchmark::State& state) {
  const int sel = static_cast<int>(state.range(0));
  const auto& v = Input(sel);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    uint64_t n = hwstar::ops::SelectBitmap(v, 0, kThreshold, &out);
    benchmark::DoNotOptimize(n);
  }
  SetCounters(state, sel);
}

// The bitmap kernel with the simd knob forced to scalar: the gap to
// `bitmap` is the explicit-data-parallelism win at each selectivity
// (bench_e23_simd sweeps it across footprints). Both arms are
// bit-identical by contract -- only the lane width differs.
void BM_BitmapScalar(benchmark::State& state) {
  const int sel = static_cast<int>(state.range(0));
  const auto& v = Input(sel);
  std::vector<uint32_t> out;
  const uint64_t saved = hwstar::tune::SimdBackend().Get();
  hwstar::tune::SimdBackend().Set(0);
  for (auto _ : state) {
    uint64_t n = hwstar::ops::SelectBitmap(v, 0, kThreshold, &out);
    benchmark::DoNotOptimize(n);
  }
  hwstar::tune::SimdBackend().Set(saved);
  SetCounters(state, sel);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<int64_t> sels = {1, 10, 100, 250, 500, 750, 900, 990, 999};
  for (int64_t s : sels) {
    benchmark::RegisterBenchmark("branching", BM_Branching)
        ->Arg(s)
        ->Iterations(3);
    benchmark::RegisterBenchmark("branchfree", BM_BranchFree)
        ->Arg(s)
        ->Iterations(3);
    benchmark::RegisterBenchmark("bitmap", BM_Bitmap)->Arg(s)->Iterations(3);
    benchmark::RegisterBenchmark("bitmap_scalar", BM_BitmapScalar)
        ->Arg(s)
        ->Iterations(3);
  }
  return hwstar::bench::RunBenchMain(
      argc, argv, "E6: selection kernels across selectivity (16M rows)",
      {"selectivity", "Mrows_per_s"});
}
