// E7 -- caches dominate: performance falls off a cliff each time the
// working set outgrows a cache level. Two series:
//  (a) random pointer-chase over arrays from 16KB to 256MB, measured in
//      host nanoseconds per access AND in simulated cycles per access on
//      the server2013 model -- the cliffs at L1/L2/L3 capacity should
//      align between the two;
//  (b) point lookups, cache-conscious B+-tree vs. binary search over a
//      sorted array: identical O(log n) comparisons, but the B+-tree's
//      wide nodes mean ~4x fewer dependent cache misses, so it wins and
//      the margin grows with the working set.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "hwstar/common/random.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/ops/btree.h"
#include "hwstar/sim/hierarchy.h"

namespace {

/// Builds a random cyclic permutation for pointer chasing (every element
/// visited once per cycle: defeats the prefetcher, exposes raw latency).
std::vector<uint32_t> MakeChase(uint64_t elements, uint64_t seed) {
  std::vector<uint32_t> order(elements);
  for (uint64_t i = 0; i < elements; ++i) order[i] = static_cast<uint32_t>(i);
  hwstar::Xoshiro256 rng(seed);
  for (uint64_t i = elements; i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  std::vector<uint32_t> next(elements);
  for (uint64_t i = 0; i < elements; ++i) {
    next[order[i]] = order[(i + 1) % elements];
  }
  return next;
}

void BM_PointerChase(benchmark::State& state) {
  const uint64_t kb = static_cast<uint64_t>(state.range(0));
  const uint64_t elements = kb * 1024 / 64;  // one element per cache line
  // Pad each element to a cache line.
  struct alignas(64) Node {
    uint32_t next;
  };
  std::vector<uint32_t> chase = MakeChase(elements, kb);
  std::vector<Node> nodes(elements);
  for (uint64_t i = 0; i < elements; ++i) nodes[i].next = chase[i];

  const uint64_t kAccesses = 4'000'000;
  for (auto _ : state) {
    uint32_t p = 0;
    for (uint64_t i = 0; i < kAccesses; ++i) p = nodes[p].next;
    benchmark::DoNotOptimize(p);
  }
  state.counters["working_set_kb"] = static_cast<double>(kb);
  state.counters["sec_per_access"] =
      benchmark::Counter(static_cast<double>(kAccesses),
                         benchmark::Counter::kIsIterationInvariantRate |
                             benchmark::Counter::kInvert);
  // Simulated cycles/access on the modeled machine for the same pattern
  // (sampled at 100K accesses to bound simulation time).
  hwstar::sim::MemoryHierarchy hier(hwstar::hw::MachineModel::Server2013());
  uint32_t p = 0;
  const uint64_t kSim = 100'000;
  for (uint64_t i = 0; i < kSim; ++i) {
    hier.Access(reinterpret_cast<uint64_t>(&nodes[p]));
    p = nodes[p].next;
  }
  state.counters["sim_cycles_per_access"] = hier.Stats().cycles_per_access();
}

void BM_BTreeLookup(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  std::vector<uint64_t> keys(n), values(n);
  for (uint64_t i = 0; i < n; ++i) {
    keys[i] = i * 2;
    values[i] = i;
  }
  auto tree = hwstar::ops::BPlusTree::BulkLoad(keys, values, 32);
  hwstar::Xoshiro256 rng(n);
  const uint64_t kLookups = 1'000'000;
  std::vector<uint64_t> probes(kLookups);
  for (auto& p : probes) p = rng.NextBounded(n) * 2;
  for (auto _ : state) {
    uint64_t found = 0, v = 0;
    for (uint64_t p : probes) found += tree.value().Find(p, &v);
    benchmark::DoNotOptimize(found);
  }
  state.counters["keys"] = static_cast<double>(n);
  state.counters["Mlookups_per_s"] = benchmark::Counter(
      static_cast<double>(kLookups) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_BinarySearchLookup(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = i * 2;
  hwstar::Xoshiro256 rng(n);
  const uint64_t kLookups = 1'000'000;
  std::vector<uint64_t> probes(kLookups);
  for (auto& p : probes) p = rng.NextBounded(n) * 2;
  for (auto _ : state) {
    uint64_t found = 0;
    for (uint64_t p : probes) {
      found += std::binary_search(keys.begin(), keys.end(), p);
    }
    benchmark::DoNotOptimize(found);
  }
  state.counters["keys"] = static_cast<double>(n);
  state.counters["Mlookups_per_s"] = benchmark::Counter(
      static_cast<double>(kLookups) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  for (int64_t kb : {16, 64, 256, 1024, 4096, 16384, 65536, 262144}) {
    benchmark::RegisterBenchmark("chase", BM_PointerChase)
        ->Arg(kb)
        ->Iterations(1);
  }
  for (int64_t n : {1 << 14, 1 << 18, 1 << 22}) {
    benchmark::RegisterBenchmark("lookup/btree", BM_BTreeLookup)
        ->Arg(n)
        ->Iterations(2);
    benchmark::RegisterBenchmark("lookup/binsearch", BM_BinarySearchLookup)
        ->Arg(n)
        ->Iterations(2);
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E7: cache capacity cliffs (pointer chase; B+-tree vs binary search)",
      {"working_set_kb", "sec_per_access", "sim_cycles_per_access", "keys",
       "Mlookups_per_s"});
}
