// E9 -- virtualization/co-location: performance assumptions break when the
// machine is shared. An OLAP scan (sum over 64MB) runs (a) alone, (b)
// co-run with a cache/bandwidth-thrashing antagonist, under both static
// partitioning and morsel-driven scheduling. Expected shape: co-running
// degrades throughput for both (shared memory bus), but morsel-driven
// scheduling degrades more gracefully -- the antagonist slows one worker,
// and with dynamic morsels the other workers absorb its share, while a
// static split waits on the victim (straggler effect).

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "hwstar/exec/morsel.h"
#include "hwstar/exec/executor.h"

namespace {

using hwstar::exec::Morsel;
using hwstar::exec::ParallelForMorsels;
using hwstar::exec::ParallelForStatic;
using hwstar::exec::Executor;

constexpr uint64_t kRows = 8 << 20;  // 64MB of int64

const std::vector<int64_t>& Data() {
  static std::vector<int64_t>* data = [] {
    auto* v = new std::vector<int64_t>(kRows);
    for (uint64_t i = 0; i < kRows; ++i) (*v)[i] = static_cast<int64_t>(i & 1023);
    return v;
  }();
  return *data;
}

/// The antagonist: strides through a 64MB buffer trashing the LLC and
/// burning bus bandwidth until told to stop.
class Antagonist {
 public:
  Antagonist() : buffer_(8 << 20), stop_(false) {
    thread_ = std::thread([this] {
      uint64_t x = 1;
      while (!stop_.load(std::memory_order_acquire)) {
        for (size_t i = 0; i < buffer_.size(); i += 8) {
          buffer_[i] += static_cast<int64_t>(++x);
        }
      }
    });
  }
  ~Antagonist() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }

 private:
  std::vector<int64_t> buffer_;
  std::atomic<bool> stop_;
  std::thread thread_;
};

void ScanBody(benchmark::State& state, bool with_antagonist,
              bool morsel_driven) {
  const auto& data = Data();
  Executor pool(2);
  std::unique_ptr<Antagonist> antagonist;
  if (with_antagonist) antagonist = std::make_unique<Antagonist>();
  for (auto _ : state) {
    std::atomic<int64_t> total{0};
    auto body = [&](uint32_t, Morsel m) {
      int64_t local = 0;
      for (uint64_t i = m.begin; i < m.end; ++i) local += data[i];
      total.fetch_add(local, std::memory_order_relaxed);
    };
    if (morsel_driven) {
      ParallelForMorsels(&pool, kRows, 1 << 15, body);
    } else {
      ParallelForStatic(&pool, kRows, body);
    }
    benchmark::DoNotOptimize(total.load());
  }
  state.counters["antagonist"] = with_antagonist ? 1 : 0;
  state.counters["Mrows_per_s"] = benchmark::Counter(
      static_cast<double>(kRows) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  Data();
  benchmark::RegisterBenchmark("morsel/alone", [](benchmark::State& s) {
    ScanBody(s, false, true);
  })->Iterations(5)->UseRealTime();
  benchmark::RegisterBenchmark("static/alone", [](benchmark::State& s) {
    ScanBody(s, false, false);
  })->Iterations(5)->UseRealTime();
  benchmark::RegisterBenchmark("morsel/corun", [](benchmark::State& s) {
    ScanBody(s, true, true);
  })->Iterations(5)->UseRealTime();
  benchmark::RegisterBenchmark("static/corun", [](benchmark::State& s) {
    ScanBody(s, true, false);
  })->Iterations(5)->UseRealTime();
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E9: co-location interference on an OLAP scan (2 workers + antagonist)",
      {"antagonist", "Mrows_per_s"});
}
