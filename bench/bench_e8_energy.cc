// E8 -- energy is a first-class constraint. The same logical work (join a
// 2^20-tuple build side with sampled probes) is executed with different
// algorithms; each run's access pattern is fed through the simulated
// hierarchy and the event-based energy model. Expected shape: energy per
// tuple tracks DRAM traffic (the dram_per_tuple column), not instruction
// counts -- the sequential scan is an order of magnitude cheaper than
// either join probe. Between the joins the model shows the honest
// trade-off: partitioning buys cache-resident probes at the price of one
// extra full pass over the data, so at this scale (table only ~1.6x the
// modeled LLC) the no-partitioning probe actually moves *fewer* total
// bytes and wins on energy; the radix join's energy advantage appears
// only when the un-partitioned table would miss much harder. Energy
// choices must be measured, not assumed from latency intuition.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "hwstar/common/hash.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/sim/energy_model.h"
#include "hwstar/sim/hierarchy.h"
#include "hwstar/workload/distributions.h"

namespace {

using hwstar::Mix64;
using hwstar::hw::MachineModel;
using hwstar::sim::EnergyModel;
using hwstar::sim::MemoryHierarchy;

constexpr uint64_t kBuild = 1 << 20;
constexpr uint64_t kProbe = kBuild / 4;  // sampled probes (sim is slow)

/// Simulates the access pattern of an NPO probe: each probe hashes into a
/// table of kBuild*2 16-byte slots spread over 32MB.
void SimulateNpo(MemoryHierarchy* hier) {
  const uint64_t table_bytes = kBuild * 2 * 16;
  const uint64_t base = 1ull << 40;
  auto probe_keys = hwstar::workload::UniformKeys(kProbe, kBuild, 5);
  for (uint64_t k : probe_keys) {
    const uint64_t slot = Mix64(k) % (table_bytes / 16);
    hier->Access(base + slot * 16);
    hier->CountInstructions(10);
  }
}

/// Simulates the radix join's probe phase: partition-local tables of 2^8
/// entries each (cache resident) plus the sequential partition read.
void SimulateRadix(MemoryHierarchy* hier, uint32_t radix_bits) {
  const uint64_t parts = uint64_t{1} << radix_bits;
  const uint64_t part_entries = (kBuild * 2) / parts;
  const uint64_t base = 1ull << 40;
  auto probe_keys = hwstar::workload::UniformKeys(kProbe, kBuild, 5);
  // Partitioning pass: sequential read of probe input + scattered writes
  // with partition locality (modeled as sequential within partition
  // buffers).
  const uint64_t input_base = 1ull << 41;
  for (uint64_t i = 0; i < kProbe; ++i) {
    hier->Access(input_base + i * 16);
    hier->CountInstructions(6);
  }
  // Probe pass: per-partition, the table region is small and reused.
  uint64_t i = 0;
  for (uint64_t p = 0; p < parts && i < kProbe; ++p) {
    const uint64_t part_base = base + p * part_entries * 16;
    const uint64_t in_part = kProbe / parts + 1;
    for (uint64_t j = 0; j < in_part && i < kProbe; ++j, ++i) {
      const uint64_t slot = Mix64(probe_keys[i]) % part_entries;
      hier->Access(part_base + slot * 16);
      hier->CountInstructions(12);  // extra partitioning instructions
    }
  }
}

void BM_EnergyNpo(benchmark::State& state) {
  MachineModel machine = MachineModel::Server2013();
  double pj_per_tuple = 0, dram_per_tuple = 0;
  for (auto _ : state) {
    MemoryHierarchy hier(machine);
    SimulateNpo(&hier);
    EnergyModel energy(machine);
    auto events = hier.Stats().energy_events;
    pj_per_tuple = energy.EnergyPerTuplePj(events, kProbe);
    dram_per_tuple =
        static_cast<double>(events.dram_accesses) / static_cast<double>(kProbe);
    benchmark::DoNotOptimize(pj_per_tuple);
  }
  state.counters["pj_per_tuple"] = pj_per_tuple;
  state.counters["dram_per_tuple"] = dram_per_tuple;
}

void BM_EnergyRadix(benchmark::State& state) {
  const uint32_t bits = static_cast<uint32_t>(state.range(0));
  MachineModel machine = MachineModel::Server2013();
  double pj_per_tuple = 0, dram_per_tuple = 0;
  for (auto _ : state) {
    MemoryHierarchy hier(machine);
    SimulateRadix(&hier, bits);
    EnergyModel energy(machine);
    auto events = hier.Stats().energy_events;
    pj_per_tuple = energy.EnergyPerTuplePj(events, kProbe);
    dram_per_tuple =
        static_cast<double>(events.dram_accesses) / static_cast<double>(kProbe);
    benchmark::DoNotOptimize(pj_per_tuple);
  }
  state.counters["pj_per_tuple"] = pj_per_tuple;
  state.counters["dram_per_tuple"] = dram_per_tuple;
  state.counters["radix_bits"] = bits;
}

/// Sequential scan baseline: bandwidth-bound but prefetch-friendly.
void BM_EnergyScan(benchmark::State& state) {
  MachineModel machine = MachineModel::Server2013();
  double pj_per_tuple = 0, dram_per_tuple = 0;
  for (auto _ : state) {
    MemoryHierarchy hier(machine);
    const uint64_t base = 1ull << 40;
    for (uint64_t i = 0; i < kProbe; ++i) {
      hier.Access(base + i * 16);
      hier.CountInstructions(4);
    }
    EnergyModel energy(machine);
    auto events = hier.Stats().energy_events;
    pj_per_tuple = energy.EnergyPerTuplePj(events, kProbe);
    dram_per_tuple =
        static_cast<double>(events.dram_accesses) / static_cast<double>(kProbe);
    benchmark::DoNotOptimize(pj_per_tuple);
  }
  state.counters["pj_per_tuple"] = pj_per_tuple;
  state.counters["dram_per_tuple"] = dram_per_tuple;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("scan", BM_EnergyScan)->Iterations(1);
  benchmark::RegisterBenchmark("join/npo", BM_EnergyNpo)->Iterations(1);
  for (int64_t bits : {6, 10, 12}) {
    benchmark::RegisterBenchmark("join/radix", BM_EnergyRadix)
        ->Arg(bits)
        ->Iterations(1);
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E8: energy proxy per tuple (simulated events x per-event cost)",
      {"radix_bits", "pj_per_tuple", "dram_per_tuple"});
}
