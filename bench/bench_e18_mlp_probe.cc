// E18 -- memory-level parallelism in point-lookup kernels. Measures the
// batched probe kernels (ops/probe_kernels.h) against their scalar
// baselines at three residency levels (L1 / L2 / DRAM-resident tables),
// group sizes {4, 8, 16, 32}, and hit rates {100%, 50%}:
//
//   linear/*   LinearProbeTable::FindBatch (group prefetching) vs Find
//   chained/*  ChainedTable::FindBatch (AMAC) vs Find
//   multiget/* KvStore::MultiGet (shard-run batches through the index
//              kernel) vs a scalar Get loop, end to end
//
// Expected shape (the paper's): batching buys nothing while the table is
// cache-resident (the kernel must merely not hurt there), and multiplies
// throughput once probes miss to DRAM, because G independent misses
// overlap in the miss queue instead of serializing. A speedup table is
// printed at the end; pass --benchmark_format=json for raw JSON.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hwstar/common/random.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/perf/report.h"
#include "hwstar/workload/distributions.h"

namespace {

using hwstar::ops::ChainedTable;
using hwstar::ops::LinearProbeTable;

constexpr uint64_t kProbes = 1 << 20;

struct SizeClass {
  const char* label;
  uint64_t build;  // entries; LinearProbeTable bytes = 32 * build at lf 0.5
};

// 512 entries -> 16KB slots (L1); 8192 -> 256KB (L2); 2M -> 64MB (DRAM).
constexpr SizeClass kSizes[] = {
    {"l1", 512}, {"l2", 8192}, {"dram", 1 << 21}};

struct Fixture {
  std::unique_ptr<LinearProbeTable> linear;
  std::unique_ptr<ChainedTable> chained;
  std::vector<uint64_t> probes_hit100;
  std::vector<uint64_t> probes_hit50;
};

const Fixture& Get(size_t size_idx) {
  static Fixture fixtures[3];
  static bool built[3] = {};
  Fixture& f = fixtures[size_idx];
  if (!built[size_idx]) {
    built[size_idx] = true;
    const uint64_t n = kSizes[size_idx].build;
    auto rel = hwstar::workload::MakeBuildRelation(n, 81 + size_idx);
    f.linear = std::make_unique<LinearProbeTable>(n);
    f.chained = std::make_unique<ChainedTable>(n);
    for (uint64_t i = 0; i < n; ++i) {
      f.linear->Insert(rel.keys[i], rel.payloads[i]);
      f.chained->Insert(rel.keys[i], rel.payloads[i]);
    }
    // Build keys are the dense set 0..n-1, so a uniform draw over [0, n)
    // always hits and over [0, 2n) hits half the time.
    f.probes_hit100 = hwstar::workload::UniformKeys(kProbes, n, 91);
    f.probes_hit50 = hwstar::workload::UniformKeys(kProbes, 2 * n, 92);
  }
  return f;
}

template <typename Table>
void BM_ScalarFind(benchmark::State& state, const Table& table,
                   const std::vector<uint64_t>& probes, double table_mb) {
  for (auto _ : state) {
    uint64_t hits = 0, sum = 0;
    for (const uint64_t key : probes) {
      uint64_t v;
      if (table.Find(key, &v)) {
        ++hits;
        sum += v;
      }
    }
    benchmark::DoNotOptimize(hits);
    benchmark::DoNotOptimize(sum);
  }
  state.counters["table_mb"] = table_mb;
  state.counters["Mlookups_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

template <typename Table>
void BM_BatchFind(benchmark::State& state, const Table& table,
                  const std::vector<uint64_t>& probes, uint32_t group,
                  double table_mb) {
  std::vector<uint64_t> values(probes.size());
  for (auto _ : state) {
    const size_t hits = table.FindBatch(probes.data(), probes.size(),
                                        values.data(), nullptr, group);
    benchmark::DoNotOptimize(hits);
    benchmark::DoNotOptimize(values.data());
  }
  state.counters["group"] = group;
  state.counters["table_mb"] = table_mb;
  state.counters["Mlookups_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

// End-to-end: the svc-style batched-get path (sorted keys -> same-shard
// runs -> index FindBatch under one latch per run) vs a scalar Get loop.
struct KvFixture {
  hwstar::kv::KvStore store;
  std::vector<uint64_t> probes;  // sorted: long same-shard runs
  KvFixture() : store(hwstar::kv::KvOptions{.shards = 4}) {
    constexpr uint64_t kKeys = 1 << 20;
    uint64_t seed = 0x123;
    std::vector<uint64_t> keys(kKeys);
    for (auto& k : keys) {
      k = hwstar::SplitMix64(seed);
      store.Put(k, k ^ 0xff);
    }
    hwstar::Xoshiro256 rng(7);
    probes.resize(kProbes);
    for (auto& p : probes) p = keys[rng.NextBounded(kKeys)];
    std::sort(probes.begin(), probes.end());
  }
};

KvFixture& GetKv() {
  static KvFixture* f = new KvFixture();
  return *f;
}

void BM_MultiGetBatched(benchmark::State& state) {
  KvFixture& f = GetKv();
  auto& store = f.store;
  std::vector<uint64_t> values(f.probes.size());
  for (auto _ : state) {
    store.MultiGet(f.probes.data(), f.probes.size(), values.data(), nullptr);
    benchmark::DoNotOptimize(values.data());
  }
  state.counters["Mlookups_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_MultiGetScalar(benchmark::State& state) {
  KvFixture& f = GetKv();
  auto& store = f.store;
  for (auto _ : state) {
    uint64_t sum = 0;
    for (const uint64_t key : f.probes) {
      auto r = store.Get(key);
      if (r.ok()) sum += r.value();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.counters["Mlookups_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

/// Rows are named <family>/<size>/<hit>/<variant>; the speedup summary
/// pairs each batched variant with its family's scalar row.
void PrintSpeedups(const hwstar::bench::CollectingReporter& reporter) {
  hwstar::perf::ReportTable table("E18 speedups: batched vs scalar",
                                  {"config", "speedup_x"});
  // Benchmark names carry an "/iterations:N" suffix; strip it before
  // pairing rows.
  auto strip = [](const std::string& name) {
    const size_t pos = name.find("/iterations:");
    return pos == std::string::npos ? name : name.substr(0, pos);
  };
  const auto& runs = reporter.captured();
  for (const auto& run : runs) {
    const std::string name = strip(run.name);
    const size_t cut = name.rfind('/');
    if (cut == std::string::npos || name.substr(cut) == "/scalar") continue;
    const std::string scalar_name = name.substr(0, cut) + "/scalar";
    for (const auto& base : runs) {
      if (strip(base.name) == scalar_name && run.real_seconds > 0) {
        table.AddRow({name, hwstar::perf::ReportTable::Num(
                                base.real_seconds / run.real_seconds)});
        break;
      }
    }
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  for (size_t s = 0; s < 3; ++s) {
    const double mb = 32.0 * kSizes[s].build / (1 << 20);
    for (const char* hit : {"hit100", "hit50"}) {
      const bool full = hit[3] == '1';
      auto probes = [s, full]() -> const std::vector<uint64_t>& {
        const Fixture& f = Get(s);
        return full ? f.probes_hit100 : f.probes_hit50;
      };
      std::string prefix = std::string("linear/") + kSizes[s].label + "/" + hit;
      benchmark::RegisterBenchmark(
          (prefix + "/scalar").c_str(),
          [s, probes, mb](benchmark::State& st) {
            BM_ScalarFind(st, *Get(s).linear, probes(), mb);
          })
          ->Iterations(3);
      std::string cprefix =
          std::string("chained/") + kSizes[s].label + "/" + hit;
      benchmark::RegisterBenchmark(
          (cprefix + "/scalar").c_str(),
          [s, probes, mb](benchmark::State& st) {
            BM_ScalarFind(st, *Get(s).chained, probes(), mb);
          })
          ->Iterations(3);
      for (uint32_t g : {4u, 8u, 16u, 32u}) {
        benchmark::RegisterBenchmark(
            (prefix + "/gp_g" + std::to_string(g)).c_str(),
            [s, probes, g, mb](benchmark::State& st) {
              BM_BatchFind(st, *Get(s).linear, probes(), g, mb);
            })
            ->Iterations(3);
        benchmark::RegisterBenchmark(
            (cprefix + "/amac_k" + std::to_string(g)).c_str(),
            [s, probes, g, mb](benchmark::State& st) {
              BM_BatchFind(st, *Get(s).chained, probes(), g, mb);
            })
            ->Iterations(3);
      }
    }
  }
  benchmark::RegisterBenchmark("multiget/art/scalar", BM_MultiGetScalar)
      ->Iterations(3);
  benchmark::RegisterBenchmark("multiget/art/batched", BM_MultiGetBatched)
      ->Iterations(3);

  hwstar::bench::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.PrintTable("E18: batched (GP / AMAC) vs scalar point lookups",
                      {"group", "table_mb", "Mlookups_per_s"});
  PrintSpeedups(reporter);
  benchmark::Shutdown();
  return 0;
}
