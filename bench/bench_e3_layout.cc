// E3 -- data layout must follow the access pattern. The same projection
// query (sum k of 8 columns over 10M rows) runs against NSM (row store),
// DSM (column store) and PAX. Expected shape: for narrow projections
// (k=1,2) the column store wins big -- it moves only the touched bytes;
// as k approaches the full width the gap closes and the row store becomes
// competitive; PAX tracks the column store for scans while keeping rows
// page-local (its OLTP advantage shows in the point-access series).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.h"
#include "hwstar/common/random.h"
#include "hwstar/storage/column_store.h"
#include "hwstar/storage/pax.h"
#include "hwstar/storage/row_store.h"
#include "hwstar/storage/table.h"

namespace {

using hwstar::storage::ColumnStore;
using hwstar::storage::Field;
using hwstar::storage::PaxStore;
using hwstar::storage::RowStore;
using hwstar::storage::Schema;
using hwstar::storage::Table;
using hwstar::storage::TypeId;

constexpr uint64_t kRows = 10'000'000;
constexpr size_t kCols = 8;

struct Stores {
  std::unique_ptr<RowStore> row;
  std::unique_ptr<ColumnStore> col;
  std::unique_ptr<PaxStore> pax;
};

const Stores& GetStores() {
  static Stores* stores = [] {
    std::vector<Field> fields;
    for (size_t c = 0; c < kCols; ++c) {
      fields.push_back({"c" + std::to_string(c), TypeId::kInt64});
    }
    Table table(Schema{fields});
    hwstar::Xoshiro256 rng(17);
    for (size_t c = 0; c < kCols; ++c) table.column(c).Reserve(kRows);
    for (uint64_t r = 0; r < kRows; ++r) {
      for (size_t c = 0; c < kCols; ++c) {
        table.column(c).AppendInt64(
            static_cast<int64_t>(rng.NextBounded(1000)));
      }
    }
    (void)table.SetRowCount(kRows);
    auto* s = new Stores();
    s->row = std::make_unique<RowStore>(
        std::move(RowStore::FromTable(table)).value());
    s->col = std::make_unique<ColumnStore>(
        std::move(ColumnStore::FromTable(table)).value());
    s->pax = std::make_unique<PaxStore>(
        std::move(PaxStore::FromTable(table)).value());
    return s;
  }();
  return *stores;
}

void SetCounters(benchmark::State& state, size_t k) {
  state.counters["cols_touched"] = static_cast<double>(k);
  state.counters["Mrows_per_s"] = benchmark::Counter(
      static_cast<double>(kRows) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_RowScan(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const RowStore& store = *GetStores().row;
  for (auto _ : state) {
    int64_t sum = 0;
    const uint8_t* base = store.data();
    const uint32_t width = store.row_width();
    for (uint64_t r = 0; r < kRows; ++r) {
      const uint8_t* row = base + r * width;
      for (size_t c = 0; c < k; ++c) {
        int64_t v;
        __builtin_memcpy(&v, row + c * 8, 8);
        sum += v;
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  SetCounters(state, k);
}

void BM_ColumnScan(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const ColumnStore& store = *GetStores().col;
  for (auto _ : state) {
    int64_t sum = 0;
    for (size_t c = 0; c < k; ++c) {
      const int64_t* data = store.IntColumn(c).data();
      for (uint64_t r = 0; r < kRows; ++r) sum += data[r];
    }
    benchmark::DoNotOptimize(sum);
  }
  SetCounters(state, k);
}

void BM_PaxScan(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const PaxStore& store = *GetStores().pax;
  for (auto _ : state) {
    int64_t sum = 0;
    for (uint64_t p = 0; p < store.num_pages(); ++p) {
      const uint32_t in_page = store.RowsInPage(p);
      for (size_t c = 0; c < k; ++c) {
        const int64_t* mini = store.IntMinipage(p, c);
        for (uint32_t i = 0; i < in_page; ++i) sum += mini[i];
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  SetCounters(state, k);
}

/// Point accesses: read all k columns of random rows (OLTP pattern).
void PointAccessBody(benchmark::State& state, int layout) {
  const size_t k = kCols;  // whole row
  const Stores& stores = GetStores();
  hwstar::Xoshiro256 rng(23);
  constexpr uint64_t kProbes = 1'000'000;
  for (auto _ : state) {
    int64_t sum = 0;
    for (uint64_t i = 0; i < kProbes; ++i) {
      const uint64_t r = rng.NextBounded(kRows);
      for (size_t c = 0; c < k; ++c) {
        switch (layout) {
          case 0:
            sum += stores.row->GetInt(r, c);
            break;
          case 1:
            sum += stores.col->IntColumn(c)[r];
            break;
          default:
            sum += stores.pax->GetInt(r, c);
            break;
        }
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.counters["cols_touched"] = static_cast<double>(k);
  state.counters["Mrows_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  GetStores();
  for (int64_t k : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark("scan/nsm", BM_RowScan)->Arg(k)->Iterations(3);
    benchmark::RegisterBenchmark("scan/dsm", BM_ColumnScan)
        ->Arg(k)
        ->Iterations(3);
    benchmark::RegisterBenchmark("scan/pax", BM_PaxScan)->Arg(k)->Iterations(3);
  }
  benchmark::RegisterBenchmark(
      "point/nsm", [](benchmark::State& s) { PointAccessBody(s, 0); })
      ->Iterations(3);
  benchmark::RegisterBenchmark(
      "point/dsm", [](benchmark::State& s) { PointAccessBody(s, 1); })
      ->Iterations(3);
  benchmark::RegisterBenchmark(
      "point/pax", [](benchmark::State& s) { PointAccessBody(s, 2); })
      ->Iterations(3);
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E3: layout (NSM/DSM/PAX), projection width sweep + point access "
      "(10M rows x 8 cols)",
      {"cols_touched", "Mrows_per_s"});
}
