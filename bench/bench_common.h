#ifndef HWSTAR_BENCH_BENCH_COMMON_H_
#define HWSTAR_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "hwstar/perf/report.h"

namespace hwstar::bench {

/// One captured benchmark result.
struct CapturedRun {
  std::string name;
  double real_seconds = 0;
  std::map<std::string, double> counters;
};

/// A console reporter that additionally captures every run so the bench
/// binary can print the experiment's summary table (the "rows the paper
/// would report") after the raw google-benchmark output.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return benchmark::ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      CapturedRun captured;
      captured.name = run.benchmark_name();
      captured.real_seconds = run.GetAdjustedRealTime() * 1e-9;
      for (const auto& [name, counter] : run.counters) {
        captured.counters[name] = counter.value;
      }
      captured_.push_back(std::move(captured));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  /// Prints a ReportTable: one row per captured run, columns = seconds +
  /// the requested counters.
  void PrintTable(const std::string& title,
                  const std::vector<std::string>& counter_names) const {
    std::vector<std::string> columns = {"config", "seconds"};
    for (const auto& n : counter_names) columns.push_back(n);
    perf::ReportTable table(title, columns);
    for (const auto& run : captured_) {
      std::vector<std::string> cells = {run.name,
                                        perf::ReportTable::Num(run.real_seconds)};
      for (const auto& n : counter_names) {
        auto it = run.counters.find(n);
        cells.push_back(
            perf::ReportTable::Num(it == run.counters.end() ? 0.0 : it->second));
      }
      table.AddRow(std::move(cells));
    }
    table.Print();
  }

  const std::vector<CapturedRun>& captured() const { return captured_; }

 private:
  std::vector<CapturedRun> captured_;
};

/// Standard bench main body: parse flags, run, print the summary table.
inline int RunBenchMain(int argc, char** argv, const std::string& table_title,
                        const std::vector<std::string>& counter_names) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.PrintTable(table_title, counter_names);
  benchmark::Shutdown();
  return 0;
}

}  // namespace hwstar::bench

#endif  // HWSTAR_BENCH_BENCH_COMMON_H_
