// E23 -- explicit data parallelism across the ISA generations. Every arm
// runs the *same* kernel on the same data and differs only in the
// tune::SimdBackend knob (scalar -> SSE4.2 -> AVX2, capped at what this
// host's cpuid reports), so the gap is purely lane width. Expected shape:
// on cache-resident selection scans the vector backends win by the lane
// count (the ISSUE's >= 1.5x bar for the best backend); as the footprint
// falls out of cache the arms converge -- DRAM feeds every ISA at the
// same rate, the paper's recurring punchline. The Bloom and hash-probe
// arms show the composed win: SIMD hashing + whole-line block tests ride
// on top of the group-prefetch MLP win, which vectors alone cannot buy.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hwstar/common/random.h"
#include "hwstar/ops/bloom_filter.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/ops/selection.h"
#include "hwstar/simd/backend.h"
#include "hwstar/tune/tunable.h"

namespace {

using hwstar::simd::Backend;
using hwstar::simd::BackendName;

/// Forces the simd knob for one timed region; restores on destruction.
class ForcedBackend {
 public:
  explicit ForcedBackend(uint32_t b)
      : saved_(hwstar::tune::SimdBackend().Get()) {
    hwstar::tune::SimdBackend().Set(b);
  }
  ~ForcedBackend() { hwstar::tune::SimdBackend().Set(saved_); }

 private:
  uint64_t saved_;
};

// Selection-scan footprints: L1-resident through DRAM-resident.
const std::vector<std::pair<std::string, uint64_t>>& ScanFootprints() {
  static const std::vector<std::pair<std::string, uint64_t>> kFootprints = {
      {"L1_16KB", 16u << 10},
      {"L2_128KB", 128u << 10},
      {"LLC_4MB", 4u << 20},
      {"DRAM_64MB", 64u << 20},
  };
  return kFootprints;
}

const std::vector<int64_t>& ScanInput(uint64_t bytes) {
  static std::map<uint64_t, std::unique_ptr<std::vector<int64_t>>> cache;
  auto& slot = cache[bytes];
  if (slot == nullptr) {
    slot = std::make_unique<std::vector<int64_t>>(bytes / sizeof(int64_t));
    hwstar::Xoshiro256 rng(bytes);
    for (auto& v : *slot) v = static_cast<int64_t>(rng.Next() >> 1);
  }
  return *slot;
}

void BM_SelectionScan(benchmark::State& state, uint64_t bytes,
                      uint32_t backend) {
  const auto& v = ScanInput(bytes);
  // ~50% selectivity: nonneg values uniform in [0, 2^63).
  const int64_t hi = int64_t{1} << 62;
  ForcedBackend forced(backend);
  std::vector<uint32_t> out;
  std::vector<uint64_t> scratch;
  for (auto _ : state) {
    uint64_t n = hwstar::ops::SelectBitmap(v, 0, hi, &out, &scratch);
    benchmark::DoNotOptimize(n);
  }
  state.counters["MB"] = static_cast<double>(bytes) / (1 << 20);
  state.counters["Mvals_per_s"] = benchmark::Counter(
      static_cast<double>(v.size()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

// Bloom / probe arms: cache-resident structures, miss-heavy probe mix, so
// both the hash phase and the test/scan phase are hot.
constexpr uint64_t kBloomKeys = 1u << 16;
constexpr uint64_t kProbeBuildKeys = 1u << 15;
constexpr size_t kProbeCount = 1u << 16;

const std::vector<uint64_t>& ProbeKeys(uint64_t build_n, uint64_t seed) {
  static std::map<uint64_t, std::unique_ptr<std::vector<uint64_t>>> cache;
  auto& slot = cache[seed];
  if (slot == nullptr) {
    slot = std::make_unique<std::vector<uint64_t>>(kProbeCount);
    hwstar::Xoshiro256 rng(seed);
    for (size_t i = 0; i < kProbeCount; ++i) {
      // Half hits, half guaranteed misses.
      (*slot)[i] = i % 2 == 0 ? rng.NextBounded(build_n) * 2 + 1
                              : (rng.Next() << 1) | (uint64_t{1} << 63);
    }
  }
  return *slot;
}

void BM_BlockedBloom(benchmark::State& state, uint32_t backend) {
  static hwstar::ops::BlockedBloomFilter* filter = [] {
    auto* f = new hwstar::ops::BlockedBloomFilter(kBloomKeys, 10);
    for (uint64_t k = 0; k < kBloomKeys; ++k) f->Add(k * 2 + 1);
    return f;
  }();
  const auto& keys = ProbeKeys(kBloomKeys, 101);
  std::unique_ptr<bool[]> out(new bool[keys.size()]);
  ForcedBackend forced(backend);
  for (auto _ : state) {
    filter->MayContainBatch(keys.data(), keys.size(), out.get());
    benchmark::DoNotOptimize(out[0]);
  }
  state.counters["Mkeys_per_s"] = benchmark::Counter(
      static_cast<double>(keys.size()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_LinearProbe(benchmark::State& state, uint32_t backend) {
  static hwstar::ops::LinearProbeTable* table = [] {
    auto* t = new hwstar::ops::LinearProbeTable(kProbeBuildKeys);
    for (uint64_t k = 0; k < kProbeBuildKeys; ++k) t->Insert(k * 2 + 1, k);
    return t;
  }();
  const auto& keys = ProbeKeys(kProbeBuildKeys, 202);
  std::vector<uint64_t> values(keys.size());
  ForcedBackend forced(backend);
  for (auto _ : state) {
    size_t hits =
        table->FindBatch(keys.data(), keys.size(), values.data(), nullptr);
    benchmark::DoNotOptimize(hits);
  }
  state.counters["Mkeys_per_s"] = benchmark::Counter(
      static_cast<double>(keys.size()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t best = static_cast<uint32_t>(hwstar::simd::BestSupported());
  // Only the backends this host can execute: a forced knob above the cap
  // would silently measure the capped backend twice.
  for (uint32_t b = 0; b <= best; ++b) {
    const std::string backend = BackendName(static_cast<Backend>(b));
    for (const auto& [label, bytes] : ScanFootprints()) {
      benchmark::RegisterBenchmark(
          ("scan_" + label + "_" + backend).c_str(), BM_SelectionScan, bytes,
          b)
          ->Iterations(bytes >= (16u << 20) ? 20 : 400);
    }
    benchmark::RegisterBenchmark(("bloom_blocked_" + backend).c_str(),
                                 BM_BlockedBloom, b)
        ->Iterations(400);
    benchmark::RegisterBenchmark(("probe_linear_" + backend).c_str(),
                                 BM_LinearProbe, b)
        ->Iterations(400);
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E23: simd backends (knob-forced) on selection / bloom / probe",
      {"MB", "Mvals_per_s", "Mkeys_per_s"});
}
