// E13 -- hot/cold tiering under flash economics (Levandoski et al., same
// proceedings). A skewed access stream runs over the tiered store with a
// DRAM tier of 5%..50% of the records, comparing inline LRU against
// offline exponential-smoothing classification. Expected shape: on a
// plain Zipf stream the two are close (LRU approximates frequency); add
// periodic full scans and LRU's hit rate collapses (scan pollution) while
// the classifier holds -- and the hit-rate gap multiplies into average
// latency and flash wear through the asymmetric flash cost model.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"
#include "hwstar/kv/tiered_store.h"
#include "hwstar/workload/distributions.h"

namespace {

using hwstar::kv::TieredKvStore;
using hwstar::kv::TierPolicy;

constexpr uint64_t kRecords = 1 << 17;  // 128K records
constexpr uint64_t kAccesses = 1 << 20;

/// Access trace: Zipf reads with optional periodic scans.
const std::vector<uint64_t>& Trace(bool with_scans) {
  static std::vector<uint64_t>* plain = nullptr;
  static std::vector<uint64_t>* scans = nullptr;
  auto*& slot = with_scans ? scans : plain;
  if (slot == nullptr) {
    slot = new std::vector<uint64_t>(
        hwstar::workload::ZipfKeys(kAccesses, kRecords, 0.8, 123));
    if (with_scans) {
      // Splice a full scan after every 128K accesses.
      std::vector<uint64_t> mixed;
      mixed.reserve(slot->size() + 8 * kRecords);
      for (uint64_t i = 0; i < slot->size(); ++i) {
        mixed.push_back((*slot)[i]);
        if ((i + 1) % (128 * 1024) == 0) {
          for (uint64_t k = 0; k < kRecords; ++k) mixed.push_back(k);
        }
      }
      *slot = std::move(mixed);
    }
  }
  return *slot;
}

void BM_Tiering(benchmark::State& state, TierPolicy policy, bool with_scans) {
  const uint64_t mem_percent = static_cast<uint64_t>(state.range(0));
  TieredKvStore::Options opts;
  opts.memory_capacity = kRecords * mem_percent / 100;
  opts.policy = policy;
  // Half-life spans the whole trace so estimates approximate true
  // frequencies; 10% log sampling as in the original design.
  opts.es_alpha = 1e-6;
  opts.es_sample_permille = 100;

  double hit_rate = 0, avg_latency = 0, wear = 0;
  for (auto _ : state) {
    TieredKvStore store(opts);
    for (uint64_t k = 0; k < kRecords; ++k) store.Load(k, k);
    const auto& trace = Trace(with_scans);
    uint64_t now = 0;
    const uint64_t warmup = trace.size() / 4;
    const uint64_t reclassify_every = 64 * 1024;
    for (uint64_t i = 0; i < trace.size(); ++i) {
      (void)store.Read(trace[i], ++now);
      if (policy == TierPolicy::kExpSmoothing &&
          (i + 1) % reclassify_every == 0) {
        store.Reclassify(now);
      }
      // Measure the steady state: drop warmup statistics.
      if (i + 1 == warmup) store.ResetStats();
    }
    hit_rate = store.stats().hit_rate();
    avg_latency = store.stats().avg_latency_us();
    wear = store.flash().WearFraction(kRecords / 64);
    benchmark::DoNotOptimize(hit_rate);
  }
  state.counters["mem_pct"] = static_cast<double>(mem_percent);
  state.counters["scans"] = with_scans ? 1 : 0;
  state.counters["hit_rate"] = hit_rate;
  state.counters["avg_us"] = avg_latency;
  state.counters["wear_frac"] = wear;
}

}  // namespace

int main(int argc, char** argv) {
  for (int64_t mem : {5, 10, 25, 50}) {
    benchmark::RegisterBenchmark(
        "lru/zipf", [](benchmark::State& s) { BM_Tiering(s, TierPolicy::kLru, false); })
        ->Arg(mem)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "expsmooth/zipf",
        [](benchmark::State& s) { BM_Tiering(s, TierPolicy::kExpSmoothing, false); })
        ->Arg(mem)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "lru/zipf+scans",
        [](benchmark::State& s) { BM_Tiering(s, TierPolicy::kLru, true); })
        ->Arg(mem)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "expsmooth/zipf+scans",
        [](benchmark::State& s) { BM_Tiering(s, TierPolicy::kExpSmoothing, true); })
        ->Arg(mem)
        ->Iterations(1);
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E13: hot/cold tiering -- LRU vs exp-smoothing classifier "
      "(128K records, Zipf 0.8 reads, optional scan pollution)",
      {"mem_pct", "scans", "hit_rate", "avg_us", "wear_frac"});
}
