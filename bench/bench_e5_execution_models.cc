// E5 -- execution models embody hardware-consciousness. The same query
// (SELECT SUM(d) WHERE 10 <= b < 20, ~10% selectivity) runs tuple-at-a-time
// (Volcano), vectorized (batch sweep), and template-fused. Expected shape:
// Volcano is 1-2 orders of magnitude slower than fused (virtual dispatch
// + per-row interpretation); vectorized sits between, with a batch-size
// sweet spot -- tiny batches re-pay interpretation, huge batches spill the
// intermediate vectors out of cache.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.h"
#include "hwstar/engine/parallel.h"
#include "hwstar/engine/planner.h"
#include "hwstar/storage/table.h"

namespace {

using hwstar::engine::ExecuteFused;
using hwstar::engine::ExecuteVectorized;
using hwstar::engine::ExecuteVolcano;
using hwstar::engine::Query;
using hwstar::engine::VectorizedOptions;
using hwstar::storage::ColumnStore;
using hwstar::storage::Schema;
using hwstar::storage::Table;
using hwstar::storage::TypeId;

constexpr uint64_t kRows = 8'000'000;

const ColumnStore& Store() {
  static ColumnStore* store = [] {
    Schema schema({{"a", TypeId::kInt64},
                   {"b", TypeId::kInt64},
                   {"c", TypeId::kInt64},
                   {"d", TypeId::kInt64}});
    Table t(schema);
    for (size_t c = 0; c < 4; ++c) t.column(c).Reserve(kRows);
    for (uint64_t i = 0; i < kRows; ++i) {
      t.column(0).AppendInt64(static_cast<int64_t>(i));
      t.column(1).AppendInt64(static_cast<int64_t>((i * 2654435761u) % 100));
      t.column(2).AppendInt64(static_cast<int64_t>(i % 7));
      t.column(3).AppendInt64(static_cast<int64_t>(i % 1000));
    }
    (void)t.SetRowCount(kRows);
    return new ColumnStore(std::move(ColumnStore::FromTable(t)).value());
  }();
  return *store;
}

Query MakeQuery() {
  using namespace hwstar::engine;
  Query q;
  q.input = &Store();
  q.filter = And(Ge(Col(1), Lit(10)), Lt(Col(1), Lit(20)));
  q.aggregate = Col(3);
  return q;
}

void SetCounters(benchmark::State& state, double batch) {
  state.counters["batch"] = batch;
  state.counters["Mrows_per_s"] = benchmark::Counter(
      static_cast<double>(kRows) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Volcano(benchmark::State& state) {
  Query q = MakeQuery();
  for (auto _ : state) {
    auto r = ExecuteVolcano(q);
    benchmark::DoNotOptimize(r.sum);
  }
  SetCounters(state, 1);
}

void BM_Vectorized(benchmark::State& state) {
  Query q = MakeQuery();
  VectorizedOptions opts;
  opts.batch_size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto r = ExecuteVectorized(q, opts);
    benchmark::DoNotOptimize(r.sum);
  }
  SetCounters(state, static_cast<double>(state.range(0)));
}

void BM_Fused(benchmark::State& state) {
  Query q = MakeQuery();
  for (auto _ : state) {
    auto r = ExecuteFused(q);
    benchmark::DoNotOptimize(r.sum);
  }
  SetCounters(state, static_cast<double>(kRows));
}

void BM_FusedParallel(benchmark::State& state) {
  Query q = MakeQuery();
  hwstar::exec::Executor pool(static_cast<uint32_t>(state.range(0)));
  hwstar::engine::ExecuteOptions opts;
  opts.model = hwstar::engine::ExecutionModel::kFused;
  for (auto _ : state) {
    auto r = hwstar::engine::ExecuteParallel(q, &pool, opts, 1 << 16);
    benchmark::DoNotOptimize(r.sum);
  }
  SetCounters(state, static_cast<double>(kRows));
  state.counters["threads"] = static_cast<double>(state.range(0));
}

}  // namespace

int main(int argc, char** argv) {
  Store();
  benchmark::RegisterBenchmark("volcano", BM_Volcano)->Iterations(2);
  for (int64_t batch : {64, 256, 1024, 4096, 16384, 65536, 262144}) {
    benchmark::RegisterBenchmark("vectorized", BM_Vectorized)
        ->Arg(batch)
        ->Iterations(3);
  }
  benchmark::RegisterBenchmark("fused", BM_Fused)->Iterations(5);
  for (int64_t t : {1, 2}) {
    benchmark::RegisterBenchmark("fused-parallel", BM_FusedParallel)
        ->Arg(t)
        ->Iterations(5)
        ->UseRealTime();
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E5: execution models, SELECT SUM(d) WHERE 10<=b<20 over 8M rows",
      {"batch", "threads", "Mrows_per_s"});
}
