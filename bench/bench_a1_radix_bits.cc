// A1 (ablation) -- radix-bit / fan-out tuning in the radix join. A fixed
// 2^20 x 2^22 join sweeps radix bits 0..16 (1- and 2-pass). Expected
// shape: a U-curve. Too few bits leave partitions bigger than cache (probe
// phase thrashes); too many bits blow the partitioning pass's write
// fan-out past the TLB/write-buffer reach. The 2-pass variant flattens the
// right side of the U at high fan-out -- the reason multi-pass
// partitioning exists.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "hwstar/ops/join_radix.h"
#include "hwstar/workload/distributions.h"

namespace {

using hwstar::ops::RadixHashJoin;
using hwstar::ops::RadixJoinOptions;
using hwstar::ops::RadixJoinTiming;
using hwstar::ops::Relation;

const Relation& Build() {
  static Relation* r =
      new Relation(hwstar::workload::MakeBuildRelation(1 << 20, 31));
  return *r;
}
const Relation& Probe() {
  static Relation* s = new Relation(
      hwstar::workload::MakeProbeRelation(1 << 22, 1 << 20, 0.0, 32));
  return *s;
}

void BM_RadixBits(benchmark::State& state, uint32_t passes,
                  bool buffered = false) {
  const uint32_t bits = static_cast<uint32_t>(state.range(0));
  RadixJoinOptions opts;
  opts.radix_bits = bits;
  opts.num_passes = bits == 0 ? 1 : passes;
  opts.buffered_scatter = buffered;
  RadixJoinTiming timing;
  for (auto _ : state) {
    auto result = RadixHashJoin(Build(), Probe(), opts, &timing);
    benchmark::DoNotOptimize(result.matches);
  }
  state.counters["radix_bits"] = bits;
  state.counters["passes"] = opts.num_passes;
  state.counters["partition_ms"] = timing.partition_seconds * 1e3;
  state.counters["join_ms"] = timing.join_seconds * 1e3;
  state.counters["Mprobes_per_s"] = benchmark::Counter(
      static_cast<double>(Probe().size()) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  Build();
  Probe();
  for (int64_t bits : {0, 2, 4, 6, 8, 10, 12, 14, 16}) {
    benchmark::RegisterBenchmark("radix/1pass", BM_RadixBits, 1u, false)
        ->Arg(bits)
        ->Iterations(3);
    if (bits >= 8) {
      benchmark::RegisterBenchmark("radix/2pass", BM_RadixBits, 2u, false)
          ->Arg(bits)
          ->Iterations(3);
      // Software write-combining: the single-pass answer to high fan-out.
      benchmark::RegisterBenchmark("radix/1pass-swwc", BM_RadixBits, 1u, true)
          ->Arg(bits)
          ->Iterations(3);
    }
  }
  return hwstar::bench::RunBenchMain(
      argc, argv, "A1: radix bits sweep, 2^20 build x 2^22 probe",
      {"radix_bits", "passes", "partition_ms", "join_ms", "Mprobes_per_s"});
}
