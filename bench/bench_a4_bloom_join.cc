// A4 (ablation) -- Bloom pre-filtering of the join probe phase, sweeping
// the probe hit rate. Build table (64MB, DRAM-resident) and cache-blocked
// Bloom filter (1MB at 4 bits/key, LLC-resident) are built once and
// amortized, as in a real pipeline; the timed region is the probe stream.
//
// Two series, because the answer is hardware-dependent in an instructive
// way. Against the flat linear-probing table ("linear"), independent
// probes overlap in the out-of-order window (memory-level parallelism),
// so a DRAM miss is cheap per-probe and the filter roughly breaks even at
// low hit rates, then turns into overhead -- the textbook "filter always
// saves a miss" intuition is *wrong* on an OoO core. Against a
// long-chain chained table ("chained", ~8 dependent hops per probe,
// serialized misses), rejecting probes with one LLC-resident filter
// access wins by multiples at low hit rates and crosses over near 100%.
// A hardware-conscious planner must know which regime it is in.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"
#include "hwstar/common/random.h"
#include "hwstar/ops/bloom_filter.h"
#include "hwstar/ops/hash_table.h"
#include "hwstar/workload/distributions.h"

namespace {

using hwstar::ops::BlockedBloomFilter;
using hwstar::ops::LinearProbeTable;
using hwstar::ops::Relation;

constexpr uint64_t kBuild = 1 << 21;   // 32MB of tuples, 64MB table
constexpr uint64_t kProbes = 1 << 22;
constexpr uint32_t kBitsPerKey = 4;    // 1MB blocked filter: LLC-resident

struct BuildSide {
  std::unique_ptr<LinearProbeTable> table;
  std::unique_ptr<hwstar::ops::ChainedTable> chained;
  std::unique_ptr<BlockedBloomFilter> bloom;
};

const BuildSide& Build() {
  static BuildSide side = [] {
    BuildSide b;
    auto rel = hwstar::workload::MakeBuildRelation(kBuild, 91);
    b.table = std::make_unique<LinearProbeTable>(kBuild);
    // Undersized bucket array: ~8 nodes per chain, dependent misses.
    b.chained = std::make_unique<hwstar::ops::ChainedTable>(kBuild / 8);
    b.bloom = std::make_unique<BlockedBloomFilter>(kBuild, kBitsPerKey);
    for (uint64_t i = 0; i < rel.size(); ++i) {
      b.table->Insert(rel.keys[i], rel.payloads[i]);
      b.chained->Insert(rel.keys[i], rel.payloads[i]);
      b.bloom->Add(rel.keys[i]);
    }
    return b;
  }();
  return side;
}

/// Probe keys where `hit_permille` of them exist in the build side.
const std::vector<uint64_t>& ProbeKeys(int hit_permille) {
  static std::map<int, std::unique_ptr<std::vector<uint64_t>>> cache;
  auto& slot = cache[hit_permille];
  if (slot == nullptr) {
    slot = std::make_unique<std::vector<uint64_t>>();
    hwstar::Xoshiro256 rng(92 + hit_permille);
    slot->reserve(kProbes);
    for (uint64_t i = 0; i < kProbes; ++i) {
      const bool hit =
          rng.NextBounded(1000) < static_cast<uint64_t>(hit_permille);
      slot->push_back(hit ? rng.NextBounded(kBuild) : (uint64_t{1} << 40) + i);
    }
  }
  return *slot;
}

void BM_Probe(benchmark::State& state, bool use_bloom, bool chained) {
  const int hit_permille = static_cast<int>(state.range(0));
  const BuildSide& build = Build();
  const auto& keys = ProbeKeys(hit_permille);
  uint64_t matches = 0;
  auto count = [&](uint64_t k) -> uint64_t {
    return chained ? build.chained->CountMatches(k)
                   : build.table->CountMatches(k);
  };
  for (auto _ : state) {
    matches = 0;
    if (use_bloom) {
      for (uint64_t k : keys) {
        if (!build.bloom->MayContain(k)) continue;
        matches += count(k);
      }
    } else {
      for (uint64_t k : keys) {
        matches += count(k);
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.counters["hit_rate"] = hit_permille / 1000.0;
  state.counters["bloom"] = use_bloom ? 1 : 0;
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["Mprobes_per_s"] = benchmark::Counter(
      static_cast<double>(kProbes) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace

int main(int argc, char** argv) {
  Build();
  for (int64_t hit : {10, 100, 250, 500, 750, 1000}) {
    benchmark::RegisterBenchmark(
        "linear/plain", [](benchmark::State& s) { BM_Probe(s, false, false); })
        ->Arg(hit)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        "linear/bloom", [](benchmark::State& s) { BM_Probe(s, true, false); })
        ->Arg(hit)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        "chained/plain", [](benchmark::State& s) { BM_Probe(s, false, true); })
        ->Arg(hit)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        "chained/bloom", [](benchmark::State& s) { BM_Probe(s, true, true); })
        ->Arg(hit)
        ->Iterations(3);
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "A4: Bloom-filtered probe phase vs plain, hit-rate sweep "
      "(2M build x 4M probes, 1MB blocked filter)",
      {"hit_rate", "bloom", "matches", "Mprobes_per_s"});
}
