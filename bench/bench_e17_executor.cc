// E17 -- what retiring the shared-FIFO pool bought. The old ThreadPool
// pushed every task through one mutex-guarded queue: at coarse task
// grain the lock is amortized and nobody notices, but morsel-driven
// execution wants fine granularity for elasticity, and there the single
// queue becomes the thing every worker serializes on. exec::Executor
// gives each worker its own deque (LIFO local pop for cache warmth,
// FIFO steal from the front for coldest work) so the common case takes
// an uncontended per-worker lock and imbalance is fixed by stealing
// rather than by central dispatch.
//
// Three views:
//   1. task-per-morsel hashing across morsel sizes -- as morsels get
//      finer the shared FIFO's lock convoy grows while the work-stealing
//      deques keep dispatch local; steal/local-pop counts show how
//      little rebalancing the balanced case actually needs;
//   2. empty-task dispatch throughput -- the pure scheduling overhead
//      ceiling of each design, no user work to hide behind;
//   3. skewed submission -- every task lands on worker 0's deque and
//      the other workers drain it by stealing; the steal share is the
//      direct measurement of the rebalancing the shared queue got "for
//      free" and the deques must earn.
//
// On small or virtualized hosts judge shapes, not absolutes: with few
// cores the FIFO lock is less contended and the gap narrows.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hwstar/common/timer.h"
#include "hwstar/exec/executor.h"
#include "hwstar/exec/morsel.h"
#include "hwstar/perf/report.h"

namespace {

using hwstar::WallTimer;
using hwstar::exec::Executor;
using hwstar::exec::ExecutorStats;
using hwstar::perf::ReportTable;

/// The retired design, kept as the measured baseline: one mutex, one
/// FIFO queue, every Submit and every pop through the same lock.
class SharedFifoPool {
 public:
  using Task = std::function<void(uint32_t)>;

  explicit SharedFifoPool(uint32_t num_threads) {
    threads_.reserve(num_threads);
    for (uint32_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~SharedFifoPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void Submit(Task task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
      ++pending_;
    }
    cv_.notify_one();
  }

  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void WorkerLoop(uint32_t id) {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) return;  // shutdown and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task(id);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Task> queue_;
  uint64_t pending_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

uint32_t BenchThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 2u : static_cast<uint32_t>(hc < 2 ? 2 : hc);
}

/// Serially-dependent hash over an index range: compute the scheduler
/// cannot fold away and whose cost is order-independent. Memory-scanning
/// work would reward whichever pool happens to run tasks in submission
/// order (the hardware prefetcher, not the scheduler); register-only
/// work isolates the dispatch cost the experiment is about.
uint64_t HashRange(uint64_t begin, uint64_t end) {
  uint64_t acc = 0;
  for (uint64_t i = begin; i < end; ++i) {
    acc = (acc ^ (i * 0x9e3779b97f4a7c15ull)) * 0xc2b2ae3d27d4eb4full;
  }
  return acc;
}

/// Hashes `total` rows task-per-morsel: one Submit per morsel, so finer
/// morsels mean proportionally more trips through the scheduler.
template <typename Pool>
double TaskPerMorselSum(Pool* pool, uint64_t total, uint64_t morsel_rows,
                        uint64_t expect) {
  std::atomic<uint64_t> sum{0};
  WallTimer timer;
  for (uint64_t begin = 0; begin < total; begin += morsel_rows) {
    const uint64_t end = begin + morsel_rows < total ? begin + morsel_rows
                                                     : total;
    pool->Submit([&sum, begin, end](uint32_t) {
      sum.fetch_add(HashRange(begin, end), std::memory_order_relaxed);
    });
  }
  pool->WaitIdle();
  const double ms = static_cast<double>(timer.ElapsedNanos()) * 1e-6;
  if (sum.load() != expect) {
    std::fprintf(stderr, "E17: checksum mismatch\n");
  }
  return ms;
}

void MorselGranularityTable(uint32_t threads) {
  constexpr uint64_t kRows = uint64_t{1} << 22;

  ReportTable table(
      "E17: task-per-morsel hash over 4M rows, shared FIFO vs work-stealing "
      "(" + std::to_string(threads) + " threads; finer morsels = more "
      "scheduler trips)",
      {"morsel_rows", "tasks", "fifo_ms", "steal_ms", "speedup", "steals",
       "local_pops"});
  for (uint64_t morsel_rows :
       {uint64_t{1} << 8, uint64_t{1} << 10, uint64_t{1} << 12,
        uint64_t{1} << 14, uint64_t{1} << 16}) {
    // Warm once, then best-of-kTrials per pool: single trials are a few
    // milliseconds and swing 2-3x under a noisy host scheduler; the min
    // is the run least perturbed by it. Fresh pools per grain so queue
    // state never carries.
    constexpr int kTrials = 3;
    uint64_t expect = 0;
    for (uint64_t begin = 0; begin < kRows; begin += morsel_rows) {
      const uint64_t end =
          begin + morsel_rows < kRows ? begin + morsel_rows : kRows;
      expect += HashRange(begin, end);
    }
    double fifo_ms = 1e30;
    {
      SharedFifoPool fifo(threads);
      TaskPerMorselSum(&fifo, kRows, morsel_rows, expect);  // warmup
      for (int t = 0; t < kTrials; ++t) {
        fifo_ms = std::min(
            fifo_ms, TaskPerMorselSum(&fifo, kRows, morsel_rows, expect));
      }
    }
    double steal_ms = 1e30;
    ExecutorStats stats;
    {
      Executor executor(threads);
      TaskPerMorselSum(&executor, kRows, morsel_rows, expect);  // warmup
      for (int t = 0; t < kTrials; ++t) {
        const ExecutorStats before = executor.stats();
        const double ms =
            TaskPerMorselSum(&executor, kRows, morsel_rows, expect);
        const ExecutorStats after = executor.stats();
        if (ms < steal_ms) {
          steal_ms = ms;
          stats.steals = after.steals - before.steals;
          stats.local_pops = after.local_pops - before.local_pops;
        }
      }
    }
    table.AddRow({std::to_string(morsel_rows),
                  std::to_string((kRows + morsel_rows - 1) / morsel_rows),
                  ReportTable::Num(fifo_ms), ReportTable::Num(steal_ms),
                  ReportTable::Num(fifo_ms / steal_ms),
                  std::to_string(stats.steals),
                  std::to_string(stats.local_pops)});
  }
  table.Print();
}

void DispatchOverheadTable(uint32_t threads) {
  constexpr uint64_t kTasks = 200000;
  ReportTable table(
      "E17: empty-task dispatch throughput (Mtasks/s) -- pure scheduling "
      "overhead, no user work",
      {"pool", "mtasks_s", "steals", "local_pops"});

  double fifo_rate;
  {
    SharedFifoPool fifo(threads);
    std::atomic<uint64_t> ran{0};
    auto run = [&] {
      WallTimer timer;
      for (uint64_t i = 0; i < kTasks; ++i) {
        fifo.Submit([&ran](uint32_t) {
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      }
      fifo.WaitIdle();
      return static_cast<double>(kTasks) /
             (static_cast<double>(timer.ElapsedNanos()) * 1e-9);
    };
    run();  // warmup
    fifo_rate = 0;
    for (int t = 0; t < 3; ++t) fifo_rate = std::max(fifo_rate, run());
  }
  table.AddRow({"shared_fifo", ReportTable::Num(fifo_rate * 1e-6), "-", "-"});

  {
    Executor executor(threads);
    std::atomic<uint64_t> ran{0};
    auto run = [&] {
      WallTimer timer;
      for (uint64_t i = 0; i < kTasks; ++i) {
        executor.Submit([&ran](uint32_t) {
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      }
      executor.WaitIdle();
      return static_cast<double>(kTasks) /
             (static_cast<double>(timer.ElapsedNanos()) * 1e-9);
    };
    run();  // warmup
    double rate = 0;
    uint64_t steals = 0;
    uint64_t pops = 0;
    for (int t = 0; t < 3; ++t) {
      const ExecutorStats before = executor.stats();
      const double r = run();
      const ExecutorStats after = executor.stats();
      if (r > rate) {
        rate = r;
        steals = after.steals - before.steals;
        pops = after.local_pops - before.local_pops;
      }
    }
    table.AddRow({"work_stealing", ReportTable::Num(rate * 1e-6),
                  std::to_string(steals), std::to_string(pops)});
  }
  table.Print();
}

void SkewTable(uint32_t threads) {
  constexpr uint64_t kTasks = 4000;
  constexpr int kSpin = 20000;
  ReportTable table(
      "E17: skewed submission (all tasks to worker 0's deque) -- stealing "
      "drains the hot deque; steal share is the rebalancing earned",
      {"distribution", "ms", "steals", "local_pops", "steal_pct"});
  for (bool skewed : {false, true}) {
    Executor executor(threads);
    std::atomic<uint64_t> ran{0};
    auto run = [&] {
      WallTimer timer;
      for (uint64_t i = 0; i < kTasks; ++i) {
        executor.Submit(
            [&ran](uint32_t) {
              volatile uint64_t sink = 0;
              for (int k = 0; k < kSpin; ++k) {
                sink = sink + static_cast<uint64_t>(k);
              }
              ran.fetch_add(1, std::memory_order_relaxed);
            },
            /*preferred_worker=*/skewed ? 0 : -1);
      }
      executor.WaitIdle();
      return static_cast<double>(timer.ElapsedNanos()) * 1e-6;
    };
    run();  // warmup
    const ExecutorStats before = executor.stats();
    const double ms = run();
    const ExecutorStats after = executor.stats();
    const uint64_t steals = after.steals - before.steals;
    const uint64_t pops = after.local_pops - before.local_pops;
    table.AddRow(
        {skewed ? "all_worker0" : "round_robin", ReportTable::Num(ms),
         std::to_string(steals), std::to_string(pops),
         ReportTable::Num(100.0 * static_cast<double>(steals) /
                          static_cast<double>(steals + pops))});
  }
  table.Print();
}

}  // namespace

int main() {
  const uint32_t threads = BenchThreads();
  MorselGranularityTable(threads);
  DispatchOverheadTable(threads);
  SkewTable(threads);
  return 0;
}
