// E21 -- TPC-C-shaped transactions through the whole stack: optimistic
// multi-key transactions (hwstar::txn) driven end-to-end through the
// service front end (svc kTxn requests), installed through the durable
// store's atomic commit framing, on a real filesystem WAL.
//
// Each driver thread runs a closed loop over its own TpccStream slice
// (order ids are actor-strided so streams never collide): new-order /
// payment / delivery in roughly the classic 45/43/12 mix, with Zipf skew
// concentrating payments on a few warehouse/district YTD keys. A commit
// that loses its optimistic validation race aborts back to the client,
// which counts it and moves on (aborted deliveries re-queue their order).
//
// Two tables:
//   E21  threads x {latched, latch-free} reads under the txn Get path --
//        committed txns/s, abort rate, and the latch-free speedup. OCC
//        validation work is identical in both; the delta is what the
//        read path costs under concurrent writers.
//   E21b skew sweep at fixed threads: abort rate vs zipf theta -- the
//        contention dial. More skew = more payments colliding on the same
//        stripe versions = more validation aborts.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "hwstar/common/timer.h"
#include "hwstar/dur/durable_kv_store.h"
#include "hwstar/dur/file_backend.h"
#include "hwstar/perf/report.h"
#include "hwstar/svc/service.h"
#include "hwstar/workload/tpcc_like.h"

namespace {

using hwstar::dur::DurableKvOptions;
using hwstar::dur::DurableKvStore;
using hwstar::dur::PosixFileBackend;
using hwstar::svc::Request;
using hwstar::svc::Response;
using hwstar::svc::Service;
using hwstar::svc::ServiceOptions;
using hwstar::svc::TxnOp;
using hwstar::workload::TpccConfig;
using hwstar::workload::TpccOp;
using hwstar::workload::TpccStream;
using hwstar::workload::TpccTxn;

constexpr double kTrialSeconds = 0.6;

struct TrialResult {
  double committed_per_sec = 0;
  double abort_rate = 0;
  double mean_ops = 0;  ///< write+read ops per committed txn
};

std::vector<TxnOp> ToSvcOps(const TpccTxn& txn) {
  std::vector<TxnOp> ops(txn.ops.size());
  for (size_t i = 0; i < txn.ops.size(); ++i) {
    // TpccOpKind mirrors TxnOp::Kind one-to-one.
    ops[i].kind = static_cast<TxnOp::Kind>(txn.ops[i].kind);
    ops[i].key = txn.ops[i].key;
    ops[i].value = txn.ops[i].value;
  }
  return ops;
}

TrialResult RunTrial(PosixFileBackend* fs, const std::string& dir,
                     int trial_id, uint32_t threads, bool latch_free,
                     double theta) {
  TrialResult out;
  DurableKvOptions dopts;
  dopts.kv.shards = 8;
  dopts.kv.latch_free_reads = latch_free;
  dopts.log_shards = 4;
  dopts.log.fsync_interval_us = 20;
  const std::string prefix = dir + "/t" + std::to_string(trial_id) + "/db";
  std::error_code ec;
  std::filesystem::create_directories(dir + "/t" + std::to_string(trial_id),
                                      ec);
  auto db = DurableKvStore::Open(fs, prefix, dopts);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db.status().message().c_str());
    return out;
  }

  TpccConfig base;
  // Enough warehouses that uniform traffic rarely collides; the skew knob
  // (not the schema size) then controls the conflict rate.
  base.warehouses = 32;
  base.zipf_theta = theta;
  base.actors = threads;

  // Populate warehouse/district/customer rows before the mix starts.
  const auto rows = hwstar::workload::MakeTpccLoad(base);
  std::vector<uint64_t> keys(rows.size()), values(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    keys[i] = rows[i].first;
    values[i] = rows[i].second;
  }
  if (!db.value()->PutBatch(keys.data(), values.data(), keys.size()).ok()) {
    std::fprintf(stderr, "load failed\n");
    return out;
  }

  ServiceOptions sopts;
  sopts.policy = std::make_shared<hwstar::svc::OverloadPolicy>();
  sopts.worker_threads = threads;
  sopts.max_pending_batches = 2 * threads;
  sopts.batch_window_nanos = 0;  // txns are singleton batches; don't linger
  Service service(sopts, db.value().get());

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> drivers;
  for (uint32_t t = 0; t < threads; ++t) {
    drivers.emplace_back([&, t] {
      TpccConfig cfg = base;
      cfg.actor = t;
      cfg.seed = base.seed + 100 * t;
      TpccStream stream(cfg);
      while (!stop.load(std::memory_order_relaxed)) {
        TpccTxn txn = stream.Next();
        Response r = service.Call(Request::Txn(ToSvcOps(txn)));
        if (r.status.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
          total_ops.fetch_add(txn.ops.size(), std::memory_order_relaxed);
        } else {
          aborted.fetch_add(1, std::memory_order_relaxed);
          // Put the popped order back so a later delivery can retry it.
          stream.RequeueDelivery(txn);
        }
      }
    });
  }
  hwstar::WallTimer timer;
  while (timer.ElapsedSeconds() < kTrialSeconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& d : drivers) d.join();
  const double elapsed = timer.ElapsedSeconds();

  const double c = static_cast<double>(committed.load());
  const double a = static_cast<double>(aborted.load());
  out.committed_per_sec = c / elapsed;
  out.abort_rate = (c + a) == 0 ? 0 : a / (c + a);
  out.mean_ops = c == 0 ? 0 : static_cast<double>(total_ops.load()) / c;
  return out;
}

}  // namespace

int main() {
  std::error_code ec;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hwstar_e21").string();
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  PosixFileBackend fs;
  int trial_id = 0;

  hwstar::perf::ReportTable threads_table(
      "E21: TPC-C-shaped txns through svc, latched vs latch-free reads",
      {"threads", "reads", "committed_s", "abort_pct", "mean_ops",
       "speedup"});
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    const TrialResult latched = RunTrial(&fs, dir, trial_id++, threads,
                                         /*latch_free=*/false,
                                         /*theta=*/0.4);
    const TrialResult lf = RunTrial(&fs, dir, trial_id++, threads,
                                    /*latch_free=*/true, /*theta=*/0.4);
    threads_table.AddRow(
        {std::to_string(threads), "latched",
         hwstar::perf::ReportTable::Num(latched.committed_per_sec),
         hwstar::perf::ReportTable::Num(100.0 * latched.abort_rate),
         hwstar::perf::ReportTable::Num(latched.mean_ops), "1.00"});
    threads_table.AddRow(
        {std::to_string(threads), "latch-free",
         hwstar::perf::ReportTable::Num(lf.committed_per_sec),
         hwstar::perf::ReportTable::Num(100.0 * lf.abort_rate),
         hwstar::perf::ReportTable::Num(lf.mean_ops),
         hwstar::perf::ReportTable::Num(
             lf.committed_per_sec /
             (latched.committed_per_sec > 0 ? latched.committed_per_sec
                                            : 1.0))});
  }
  threads_table.Print();
  std::printf("\n");

  hwstar::perf::ReportTable skew_table(
      "E21b: abort rate vs warehouse/customer skew, 8 threads, latch-free",
      {"zipf_theta", "committed_s", "abort_pct"});
  for (const double theta : {0.0, 0.4, 0.8, 0.99}) {
    const TrialResult r = RunTrial(&fs, dir, trial_id++, /*threads=*/8,
                                   /*latch_free=*/true, theta);
    skew_table.AddRow({hwstar::perf::ReportTable::Num(theta),
                       hwstar::perf::ReportTable::Num(r.committed_per_sec),
                       hwstar::perf::ReportTable::Num(100.0 * r.abort_rate)});
  }
  skew_table.Print();

  std::filesystem::remove_all(dir, ec);
  return 0;
}
