// A3 (ablation) -- compression as a bandwidth lever. SUM over 50M values
// stored raw, dictionary-coded, RLE-coded (sorted input), and bit-packed.
// Expected shape: when the encoding shrinks the bytes actually streamed
// (RLE on runs; bit-packing at small widths), the scan gets *faster* than
// raw despite the decode work -- the memory wall makes CPU cycles cheaper
// than bytes. Dictionary codes only pay when operating directly on codes.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "hwstar/common/random.h"
#include "hwstar/storage/compression.h"

namespace {

using namespace hwstar::storage;

constexpr uint64_t kRows = 50'000'000;

/// Input with the given distinct-value cardinality, sorted (so RLE sees
/// runs of length kRows/cardinality).
const std::vector<int64_t>& Input(uint64_t cardinality) {
  static std::map<uint64_t, std::unique_ptr<std::vector<int64_t>>> cache;
  auto& slot = cache[cardinality];
  if (slot == nullptr) {
    slot = std::make_unique<std::vector<int64_t>>(kRows);
    for (uint64_t i = 0; i < kRows; ++i) {
      (*slot)[i] = static_cast<int64_t>(i / (kRows / cardinality));
    }
  }
  return *slot;
}

void SetCounters(benchmark::State& state, uint64_t cardinality,
                 uint64_t encoded_bytes) {
  state.counters["cardinality"] = static_cast<double>(cardinality);
  state.counters["data_mb"] =
      static_cast<double>(encoded_bytes) / (1 << 20);
  state.counters["Mrows_per_s"] = benchmark::Counter(
      static_cast<double>(kRows) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SumRaw(benchmark::State& state) {
  const uint64_t card = static_cast<uint64_t>(state.range(0));
  const auto& v = Input(card);
  for (auto _ : state) {
    int64_t sum = 0;
    for (int64_t x : v) sum += x;
    benchmark::DoNotOptimize(sum);
  }
  SetCounters(state, card, kRows * sizeof(int64_t));
}

void BM_SumRle(benchmark::State& state) {
  const uint64_t card = static_cast<uint64_t>(state.range(0));
  RleEncoded enc = RleEncode(Input(card));
  for (auto _ : state) {
    int64_t sum = RleSum(enc);
    benchmark::DoNotOptimize(sum);
  }
  SetCounters(state, card, enc.EncodedBytes());
}

void BM_SumBitPacked(benchmark::State& state) {
  const uint64_t card = static_cast<uint64_t>(state.range(0));
  auto packed = BitPack(Input(card));
  const BitPacked& enc = packed.value();
  for (auto _ : state) {
    int64_t sum = 0;
    for (uint64_t i = 0; i < enc.count; ++i) sum += BitPackedGet(enc, i);
    benchmark::DoNotOptimize(sum);
  }
  SetCounters(state, card, enc.EncodedBytes());
  state.counters["bit_width"] = enc.bit_width;
}

void BM_SumDict(benchmark::State& state) {
  const uint64_t card = static_cast<uint64_t>(state.range(0));
  DictEncoded enc = DictEncode(Input(card));
  for (auto _ : state) {
    // Aggregate per code, then expand through the dictionary: the
    // operate-on-codes pattern.
    std::vector<int64_t> per_code(enc.dictionary.size(), 0);
    for (int32_t c : enc.codes) ++per_code[static_cast<size_t>(c)];
    int64_t sum = 0;
    for (size_t c = 0; c < per_code.size(); ++c) {
      sum += per_code[c] * enc.dictionary[c];
    }
    benchmark::DoNotOptimize(sum);
  }
  SetCounters(state, card, enc.EncodedBytes());
}

}  // namespace

int main(int argc, char** argv) {
  for (int64_t card : {16, 4096, 1 << 20}) {
    benchmark::RegisterBenchmark("sum/raw", BM_SumRaw)->Arg(card)->Iterations(3);
    benchmark::RegisterBenchmark("sum/rle", BM_SumRle)->Arg(card)->Iterations(3);
    benchmark::RegisterBenchmark("sum/bitpack", BM_SumBitPacked)
        ->Arg(card)
        ->Iterations(3);
    benchmark::RegisterBenchmark("sum/dict", BM_SumDict)
        ->Arg(card)
        ->Iterations(3);
  }
  return hwstar::bench::RunBenchMain(
      argc, argv, "A3: scan over compressed layouts (50M values, sorted)",
      {"cardinality", "data_mb", "bit_width", "Mrows_per_s"});
}
