// E4 -- NUMA: ignoring placement costs real performance. A parallel scan
// over a large region is simulated on 2/4/8-node machines under three
// placement policies. Every core streams its share of the data; each cache
// line's DRAM latency depends on whether its home node matches the core's.
// Expected shape: naive bind-to-node-0 degrades with node count (all but
// one node's cores pay the remote multiplier and the makespan follows the
// slowest core); interleaving pays a constant (N-1)/N remote fraction;
// partitioned-local (first-touch by the scanning core) stays at 1.0x.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hwstar/hw/machine_model.h"
#include "hwstar/mem/numa_allocator.h"
#include "hwstar/sim/numa_model.h"

namespace {

using hwstar::hw::MachineModel;
using hwstar::sim::NumaModel;

constexpr uint64_t kBytes = 1ull << 30;  // 1GB logical region
constexpr uint64_t kLine = 64;

enum Policy { kBind0 = 0, kInterleave = 1, kLocalPartition = 2 };

const char* PolicyName(int p) {
  switch (p) {
    case kBind0:
      return "bind0";
    case kInterleave:
      return "interleave";
    default:
      return "local";
  }
}

/// Simulated makespan (cycles) of a parallel streaming scan under the
/// given machine and placement; also returns the remote-access fraction.
double SimulateScan(const MachineModel& machine, int policy,
                    double* remote_fraction) {
  NumaModel numa(machine);
  const uint64_t base = 1ull << 40;  // arbitrary virtual base
  // Register placement.
  switch (policy) {
    case kBind0:
      numa.RegisterRegion(base, kBytes, NumaModel::Policy::kBindNode0);
      break;
    case kInterleave:
      numa.RegisterRegion(base, kBytes, NumaModel::Policy::kInterleave);
      break;
    case kLocalPartition: {
      // Each core's slice is first-touched by that core.
      const uint64_t slice = kBytes / machine.cores;
      for (uint32_t c = 0; c < machine.cores; ++c) {
        numa.RegisterRegion(base + c * slice, slice,
                            NumaModel::Policy::kFirstTouch,
                            numa.NodeOfCore(c));
      }
      break;
    }
  }
  // Each core streams its slice; sample one access per 4KB page per line
  // group to keep the simulation fast while preserving the local/remote
  // ratio exactly (all lines in a page share a home node).
  const uint64_t slice = kBytes / machine.cores;
  const uint64_t kPage = 4096;
  std::vector<double> core_cycles(machine.cores, 0.0);
  for (uint32_t c = 0; c < machine.cores; ++c) {
    const uint64_t begin = base + c * slice;
    for (uint64_t off = 0; off < slice; off += kPage) {
      const uint32_t lat = numa.DramLatency(c, begin + off);
      core_cycles[c] += static_cast<double>(lat) * (kPage / kLine);
    }
  }
  *remote_fraction = numa.stats().remote_fraction();
  return *std::max_element(core_cycles.begin(), core_cycles.end());
}

void BM_NumaScan(benchmark::State& state, uint32_t nodes, int policy,
                 double remote_multiplier) {
  MachineModel machine = MachineModel::Server2013();
  machine.numa_nodes = nodes;
  machine.cores = 4 * nodes;
  machine.numa_remote_multiplier = remote_multiplier;

  double remote_fraction = 0;
  double makespan = 0;
  for (auto _ : state) {
    makespan = SimulateScan(machine, policy, &remote_fraction);
    benchmark::DoNotOptimize(makespan);
  }
  double local_ref = 0, rf = 0;
  local_ref = SimulateScan(machine, kLocalPartition, &rf);
  state.counters["nodes"] = nodes;
  state.counters["remote_mult"] = remote_multiplier;
  state.counters["remote_frac"] = remote_fraction;
  state.counters["slowdown_vs_local"] = makespan / local_ref;
}

}  // namespace

int main(int argc, char** argv) {
  for (uint32_t nodes : {2u, 4u, 8u}) {
    for (int policy : {kBind0, kInterleave, kLocalPartition}) {
      std::string name =
          std::string(PolicyName(policy)) + "/n" + std::to_string(nodes);
      benchmark::RegisterBenchmark(name.c_str(), BM_NumaScan, nodes, policy,
                                   1.6)
          ->Iterations(1);
    }
  }
  // Remote-multiplier sensitivity at 2 nodes, bind0.
  for (double mult : {1.0, 1.3, 1.6, 2.0, 3.0}) {
    std::string name = "bind0/mult" + std::to_string(mult).substr(0, 3);
    benchmark::RegisterBenchmark(name.c_str(), BM_NumaScan, 2u, kBind0, mult)
        ->Iterations(1);
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E4: simulated NUMA placement for a parallel scan (1GB, 4 cores/node)",
      {"nodes", "remote_mult", "remote_frac", "slowdown_vs_local"});
}
