// E15 -- group commit: amortizing the fsync. A sync costs the same
// whether it covers 1 record or 500, so the WAL's syncer coalesces every
// writer currently blocked on a commit into ONE write+sync. This bench
// measures that directly on a real filesystem (PosixFileBackend in a
// temp dir):
//   per-op    group_commit=off -- every commit does its own write+fdatasync
//   group     group_commit=on  -- writers stage + block, one syncer flushes
// Expected shape: per-op throughput is flat in the writer count (the sync
// is the serial bottleneck and everyone queues behind it), while group
// commit scales with writers because N concurrent commits share one sync.
// The second table sweeps the sync level at 8 writers: kNone bounds what
// the staging path alone can do, kFdatasync vs kFsync shows the price of
// also syncing file metadata per group.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "hwstar/common/timer.h"
#include "hwstar/dur/file_backend.h"
#include "hwstar/dur/log_writer.h"
#include "hwstar/perf/report.h"

namespace {

using hwstar::dur::LogWriter;
using hwstar::dur::LogWriterOptions;
using hwstar::dur::PosixFileBackend;
using hwstar::dur::SyncMode;
using hwstar::dur::SyncModeName;
using hwstar::dur::WalRecord;
using hwstar::dur::WalRecordType;

constexpr double kTrialSeconds = 0.6;

struct TrialResult {
  double commits_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double mean_group = 0;
};

double PercentileUs(std::vector<uint64_t>* nanos, double pct) {
  if (nanos->empty()) return 0;
  const size_t idx = std::min(
      nanos->size() - 1,
      static_cast<size_t>(pct * static_cast<double>(nanos->size())));
  std::nth_element(nanos->begin(), nanos->begin() + idx, nanos->end());
  return static_cast<double>((*nanos)[idx]) * 1e-3;
}

/// `writers` threads AppendDurable as fast as they can for kTrialSeconds
/// against a fresh log; each trial gets its own prefix so segment files
/// never collide.
TrialResult RunTrial(PosixFileBackend* fs, const std::string& dir,
                     int trial_id, int writers, const LogWriterOptions& opts) {
  TrialResult out;
  const std::string prefix = dir + "/t" + std::to_string(trial_id);
  auto opened = LogWriter::Open(fs, prefix, opts, /*next_lsn=*/1,
                                /*next_segment=*/0);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().message().c_str());
    return out;
  }
  LogWriter* log = opened.value().get();

  std::atomic<uint64_t> commits{0};
  std::atomic<bool> stop{false};
  std::vector<std::vector<uint64_t>> latencies(
      static_cast<size_t>(writers));
  std::vector<std::thread> threads;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      auto& mine = latencies[static_cast<size_t>(w)];
      mine.reserve(1 << 16);
      WalRecord record;
      record.key = static_cast<uint64_t>(w) << 32;
      while (!stop.load(std::memory_order_relaxed)) {
        ++record.key;
        record.value = record.key * 3;
        hwstar::WallTimer op;
        if (!log->AppendDurable(record).ok()) break;
        mine.push_back(op.ElapsedNanos());
        commits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  hwstar::WallTimer timer;
  while (timer.ElapsedSeconds() < kTrialSeconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed = timer.ElapsedSeconds();

  std::vector<uint64_t> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  out.commits_per_sec = static_cast<double>(commits.load()) / elapsed;
  out.p50_us = PercentileUs(&all, 0.50);
  out.p99_us = PercentileUs(&all, 0.99);
  out.mean_group = log->stats().mean_group();
  return out;
}

}  // namespace

int main() {
  std::error_code ec;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hwstar_e15").string();
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  PosixFileBackend fs;
  int trial_id = 0;

  hwstar::perf::ReportTable writers_table(
      "E15: WAL commit throughput, per-op fdatasync vs group commit",
      {"writers", "mode", "commits_s", "p50_us", "p99_us", "mean_group",
       "speedup"});
  for (const int writers : {1, 2, 4, 8, 16}) {
    LogWriterOptions per_op;
    per_op.group_commit = false;
    const TrialResult base = RunTrial(&fs, dir, trial_id++, writers, per_op);

    LogWriterOptions grouped;
    // Closed loop: once every writer is staged nobody else can arrive, so
    // cap the linger at the writer count instead of burning the full
    // fsync_interval_us per group.
    grouped.fsync_every_n = static_cast<uint32_t>(writers);
    const TrialResult group =
        RunTrial(&fs, dir, trial_id++, writers, grouped);

    writers_table.AddRow({std::to_string(writers), "per-op",
                          hwstar::perf::ReportTable::Num(base.commits_per_sec),
                          hwstar::perf::ReportTable::Num(base.p50_us),
                          hwstar::perf::ReportTable::Num(base.p99_us),
                          hwstar::perf::ReportTable::Num(base.mean_group),
                          "1.00"});
    writers_table.AddRow(
        {std::to_string(writers), "group",
         hwstar::perf::ReportTable::Num(group.commits_per_sec),
         hwstar::perf::ReportTable::Num(group.p50_us),
         hwstar::perf::ReportTable::Num(group.p99_us),
         hwstar::perf::ReportTable::Num(group.mean_group),
         hwstar::perf::ReportTable::Num(group.commits_per_sec /
                                        std::max(base.commits_per_sec, 1.0))});
  }
  writers_table.Print();
  std::printf("\n");

  hwstar::perf::ReportTable sync_table(
      "E15b: sync level at 8 writers, group commit on",
      {"sync", "commits_s", "p50_us", "p99_us", "mean_group"});
  for (const SyncMode mode :
       {SyncMode::kNone, SyncMode::kFdatasync, SyncMode::kFsync}) {
    LogWriterOptions opts;
    opts.sync = mode;
    opts.fsync_every_n = 8;
    const TrialResult r = RunTrial(&fs, dir, trial_id++, /*writers=*/8, opts);
    sync_table.AddRow({SyncModeName(mode),
                       hwstar::perf::ReportTable::Num(r.commits_per_sec),
                       hwstar::perf::ReportTable::Num(r.p50_us),
                       hwstar::perf::ReportTable::Num(r.p99_us),
                       hwstar::perf::ReportTable::Num(r.mean_group)});
  }
  sync_table.Print();

  std::filesystem::remove_all(dir, ec);
  return 0;
}
