// E14 -- serving under overload: the latency-throughput knee with and
// without admission control. A closed-loop probe measures the service's
// saturation capacity, then an open-loop generator (arrivals paced by a
// wall-clock schedule, independent of completions -- the regime real
// traffic lives in) offers 0.5x..2x that capacity to two configurations:
//   admission=on   bounded queues + per-tenant quotas + load shedding
//   admission=off  unbounded queue, every request eventually served
// Expected shape: below the knee the two are identical; past it the
// bounded service's completed throughput plateaus at capacity and its p99
// stays within a small multiple of the uncontended p99 (excess arrivals
// are shed, absorbing the overload), while the unbounded baseline's p99
// grows with the backlog -- queueing collapse, the serving-side analogue
// of the paper's "software must respect the machine's limits".

#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "hwstar/common/timer.h"
#include "hwstar/kv/kv_store.h"
#include "hwstar/perf/report.h"
#include "hwstar/svc/service.h"
#include "hwstar/workload/distributions.h"

namespace {

using hwstar::kv::KvOptions;
using hwstar::kv::KvStore;
using hwstar::svc::Priority;
using hwstar::svc::Request;
using hwstar::svc::Response;
using hwstar::svc::Service;
using hwstar::svc::ServiceMetrics;
using hwstar::svc::ServiceOptions;

constexpr uint64_t kRecords = 1 << 20;
constexpr double kZipfTheta = 0.8;
// 10% of requests are range scans over 4K keys (~hundreds of us each):
// enough analytic weight that execution, not the request envelope, is the
// bottleneck, so the open-loop generator can out-pace the service.
constexpr uint32_t kScanEveryN = 10;
constexpr uint64_t kScanSpanKeys = 4096;
// Enough closed-loop clients that the capacity probe is throughput-bound
// (saturated workers) rather than latency-bound by the batch window.
constexpr int kClosedLoopClients = 16;
constexpr int kGenerators = 2;  // open-loop submitter threads

ServiceOptions MakeOptions(bool admission) {
  ServiceOptions opts;
  opts.worker_threads = 2;
  opts.max_batch = 64;
  opts.dispatch_max = 64;
  opts.batch_window_nanos = 50'000;
  if (admission) {
    opts.admission.max_queue_depth = 512;
    opts.admission.per_tenant_quota = 256;
  } else {
    opts.admission.max_queue_depth = 0;  // unbounded: the oblivious baseline
  }
  return opts;
}

Request MakeRequest(uint64_t seq, hwstar::workload::ZipfGenerator* zipf,
                    uint64_t key_stride) {
  const uint32_t tenant = static_cast<uint32_t>(seq % 4);
  const Priority priority =
      seq % 16 == 0 ? Priority::kLow
                    : (seq % 16 == 1 ? Priority::kHigh : Priority::kNormal);
  if (seq % kScanEveryN == 0) {
    const uint64_t lo = zipf->Next() * key_stride;
    return Request::Scan(lo, lo + kScanSpanKeys * key_stride, /*limit=*/0,
                         tenant, priority);
  }
  return Request::PointGet(zipf->Next() * key_stride, tenant, priority);
}

/// Closed loop: synchronous clients drive the service flat out; the
/// completion rate is its saturation capacity for this mix.
double MeasureCapacityQps(KvStore* store, uint64_t key_stride,
                          double seconds) {
  Service service(MakeOptions(/*admission=*/true), store);
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClosedLoopClients; ++c) {
    clients.emplace_back([&, c] {
      hwstar::workload::ZipfGenerator zipf(kRecords, kZipfTheta,
                                           /*seed=*/100 + c);
      hwstar::WallTimer timer;
      uint64_t seq = 0;
      while (timer.ElapsedSeconds() < seconds) {
        (void)service.Call(MakeRequest(seq++, &zipf, key_stride));
        completed.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  return static_cast<double>(completed.load()) / seconds;
}

struct OpenLoopResult {
  double offered_qps = 0;
  double completed_qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double shed_pct = 0;
  ServiceMetrics metrics;
};

/// Open loop: arrivals follow an absolute wall-clock schedule at
/// `rate_qps`, regardless of how the service is keeping up. Generator
/// thread g owns sequence numbers g, g+kGenerators, ... so the combined
/// arrival stream holds the schedule even past the service's capacity.
OpenLoopResult RunOpenLoop(KvStore* store, uint64_t key_stride,
                           bool admission, double rate_qps, double seconds) {
  OpenLoopResult out;
  Service service(MakeOptions(admission), store);
  const uint64_t start = hwstar::svc::ServiceNow();
  const uint64_t run_nanos = static_cast<uint64_t>(seconds * 1e9);
  const double interarrival = 1e9 / rate_qps;

  std::vector<std::vector<std::future<Response>>> futures(kGenerators);
  std::atomic<uint64_t> submitted{0};
  std::vector<std::thread> generators;
  for (int g = 0; g < kGenerators; ++g) {
    generators.emplace_back([&, g] {
      hwstar::workload::ZipfGenerator zipf(kRecords, kZipfTheta,
                                           /*seed=*/7 + g);
      auto& mine = futures[g];
      mine.reserve(static_cast<size_t>(rate_qps * seconds) / kGenerators + 16);
      uint64_t seq = static_cast<uint64_t>(g);
      for (;;) {
        const uint64_t next =
            start +
            static_cast<uint64_t>(static_cast<double>(seq) * interarrival);
        uint64_t now = hwstar::svc::ServiceNow();
        if (now - start >= run_nanos) break;
        while (now < next) {  // hold to the schedule even when ahead
          std::this_thread::yield();
          now = hwstar::svc::ServiceNow();
        }
        mine.push_back(
            service.Submit(MakeRequest(seq, &zipf, key_stride)));
        seq += kGenerators;
      }
      submitted.fetch_add(mine.size());
    });
  }
  for (auto& g : generators) g.join();
  const double offered_seconds =
      static_cast<double>(hwstar::svc::ServiceNow() - start) * 1e-9;

  uint64_t ok = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      if (f.get().status.ok()) ++ok;
    }
  }
  service.Drain();
  out.metrics = service.metrics();
  out.offered_qps = static_cast<double>(submitted.load()) / offered_seconds;
  // Completed throughput over the offered window: what clients got back.
  out.completed_qps = static_cast<double>(ok) / offered_seconds;
  out.p50_ms = static_cast<double>(out.metrics.total.p50) * 1e-6;
  out.p99_ms = static_cast<double>(out.metrics.total.p99) * 1e-6;
  out.shed_pct = out.metrics.shed_rate() * 100.0;
  return out;
}

}  // namespace

int main() {
  KvOptions kopts;
  kopts.shards = 8;
  KvStore store(kopts);
  // Spread keys across the whole 64-bit space so range shards all carry
  // load; requests address key i as i * stride.
  const uint64_t key_stride = ~uint64_t{0} / kRecords;
  for (uint64_t i = 0; i < kRecords; ++i) store.Put(i * key_stride, i);

  std::printf("E14: probing closed-loop capacity...\n");
  const double capacity = MeasureCapacityQps(&store, key_stride, 1.0);
  std::printf("  capacity ~ %.0f q/s\n\n", capacity);

  hwstar::perf::ReportTable table(
      "E14: open-loop service overload (1M keys, zipf 0.8, 10% scans)",
      {"config", "offered_x", "offered_qps", "done_qps", "p50_ms", "p99_ms",
       "shed_pct", "mean_batch"});
  ServiceMetrics at2x_admission;
  for (const double mult : {0.5, 1.0, 2.0}) {
    for (const bool admission : {false, true}) {
      const auto r = RunOpenLoop(&store, key_stride, admission,
                                 capacity * mult, /*seconds=*/1.0);
      if (admission && mult == 2.0) at2x_admission = r.metrics;
      table.AddRow({admission ? "admission" : "no-admission",
                    hwstar::perf::ReportTable::Num(mult),
                    hwstar::perf::ReportTable::Num(r.offered_qps),
                    hwstar::perf::ReportTable::Num(r.completed_qps),
                    hwstar::perf::ReportTable::Num(r.p50_ms),
                    hwstar::perf::ReportTable::Num(r.p99_ms),
                    hwstar::perf::ReportTable::Num(r.shed_pct),
                    hwstar::perf::ReportTable::Num(
                        r.metrics.mean_batch_size())});
    }
  }
  table.Print();
  std::printf("\n");
  hwstar::svc::MetricsReport("E14 detail: admission=on at 2x load",
                             at2x_admission)
      .Print();
  return 0;
}
