// E10 -- heterogeneity: offload pays only past a data-size threshold. A
// streaming filter over 1KB..1GB is costed on the CPU path (1 and 8 cores)
// and on the accelerator path (setup latency + transfer + streaming).
// Expected shape: the accelerator loses badly on small inputs (setup
// dominates), crosses over in the tens-of-MB range for a single CPU core,
// and the crossover moves up (or vanishes) as CPU cores are added -- the
// decision the paper says engines must start making explicitly.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "hwstar/sim/offload_model.h"

namespace {

using hwstar::sim::OffloadModel;

void BM_Offload(benchmark::State& state, uint32_t cpu_cores) {
  const uint64_t bytes = static_cast<uint64_t>(state.range(0));
  OffloadModel model;
  double cpu = 0, accel = 0;
  for (auto _ : state) {
    cpu = model.CpuSeconds(bytes, cpu_cores);
    accel = model.AccelSeconds(bytes);
    benchmark::DoNotOptimize(cpu);
    benchmark::DoNotOptimize(accel);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["cpu_cores"] = cpu_cores;
  state.counters["cpu_ms"] = cpu * 1e3;
  state.counters["accel_ms"] = accel * 1e3;
  state.counters["accel_speedup"] = accel > 0 ? cpu / accel : 0;
}

void BM_BreakEven(benchmark::State& state) {
  const uint32_t cores = static_cast<uint32_t>(state.range(0));
  OffloadModel model;
  uint64_t be = 0;
  for (auto _ : state) {
    be = model.BreakEvenBytes(cores);
    benchmark::DoNotOptimize(be);
  }
  state.counters["cpu_cores"] = cores;
  state.counters["breakeven_mb"] =
      static_cast<double>(be) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  for (int64_t log2b = 10; log2b <= 30; log2b += 4) {
    benchmark::RegisterBenchmark("offload/1core", BM_Offload, 1u)
        ->Arg(int64_t{1} << log2b)
        ->Iterations(1);
    benchmark::RegisterBenchmark("offload/8core", BM_Offload, 8u)
        ->Arg(int64_t{1} << log2b)
        ->Iterations(1);
  }
  for (int64_t cores : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark("breakeven", BM_BreakEven)
        ->Arg(cores)
        ->Iterations(1);
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E10: accelerator offload cost model (setup + transfer + streaming)",
      {"bytes", "cpu_cores", "cpu_ms", "accel_ms", "accel_speedup",
       "breakeven_mb"});
}
