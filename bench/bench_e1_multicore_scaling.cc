// E1 -- "The free lunch is over": the only way to more performance is
// parallelism. Scan+aggregate a large column with 1..N threads; the series
// to reproduce is near-linear scaling for the morsel-driven scan up to the
// physical core count (then memory-bus saturation), with static
// partitioning matching it on uniform data but trailing under skew (see
// E9 for the interference variant).

#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "bench_common.h"
#include "hwstar/exec/morsel.h"
#include "hwstar/exec/executor.h"
#include "hwstar/ops/aggregation.h"

namespace {

using hwstar::exec::Morsel;
using hwstar::exec::ParallelForMorsels;
using hwstar::exec::ParallelForStatic;
using hwstar::exec::Executor;

constexpr uint64_t kRows = 16 << 20;  // 16M int64 = 128MB

const std::vector<int64_t>& Data() {
  static std::vector<int64_t>* data = [] {
    auto* v = new std::vector<int64_t>(kRows);
    for (uint64_t i = 0; i < kRows; ++i) {
      (*v)[i] = static_cast<int64_t>(i % 1000);
    }
    return v;
  }();
  return *data;
}

void SetThroughput(benchmark::State& state, uint32_t threads) {
  state.counters["threads"] = threads;
  state.counters["Mtuples_per_s"] = benchmark::Counter(
      static_cast<double>(kRows) * 1e-6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SequentialSum(benchmark::State& state) {
  const auto& data = Data();
  for (auto _ : state) {
    int64_t sum = hwstar::ops::Sum(data);
    benchmark::DoNotOptimize(sum);
  }
  SetThroughput(state, 1);
}

void ParallelSumBody(benchmark::State& state, bool morsel_driven) {
  const auto& data = Data();
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  Executor pool(threads);
  for (auto _ : state) {
    std::atomic<int64_t> total{0};
    auto body = [&](uint32_t, Morsel m) {
      int64_t local = 0;
      for (uint64_t i = m.begin; i < m.end; ++i) local += data[i];
      total.fetch_add(local, std::memory_order_relaxed);
    };
    if (morsel_driven) {
      ParallelForMorsels(&pool, kRows, 1 << 16, body);
    } else {
      ParallelForStatic(&pool, kRows, body);
    }
    benchmark::DoNotOptimize(total.load());
  }
  SetThroughput(state, threads);
}

void BM_MorselSum(benchmark::State& state) { ParallelSumBody(state, true); }
void BM_StaticSum(benchmark::State& state) { ParallelSumBody(state, false); }

}  // namespace

int main(int argc, char** argv) {
  Data();  // materialize before timing
  benchmark::RegisterBenchmark("seq/1", BM_SequentialSum)->Iterations(5);
  for (int t : {1, 2, 4}) {
    benchmark::RegisterBenchmark("morsel", BM_MorselSum)->Arg(t)->Iterations(5)->UseRealTime();
    benchmark::RegisterBenchmark("static", BM_StaticSum)->Arg(t)->Iterations(5)->UseRealTime();
  }
  return hwstar::bench::RunBenchMain(
      argc, argv,
      "E1: multicore scaling of scan+aggregate (16M tuples, 128MB)",
      {"threads", "Mtuples_per_s"});
}
