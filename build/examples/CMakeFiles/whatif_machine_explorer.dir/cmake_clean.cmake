file(REMOVE_RECURSE
  "CMakeFiles/whatif_machine_explorer.dir/whatif_machine_explorer.cc.o"
  "CMakeFiles/whatif_machine_explorer.dir/whatif_machine_explorer.cc.o.d"
  "whatif_machine_explorer"
  "whatif_machine_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_machine_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
