file(REMOVE_RECURSE
  "CMakeFiles/join_tuning_advisor.dir/join_tuning_advisor.cc.o"
  "CMakeFiles/join_tuning_advisor.dir/join_tuning_advisor.cc.o.d"
  "join_tuning_advisor"
  "join_tuning_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_tuning_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
