# Empty dependencies file for oltp_tiering.
# This may be replaced when dependencies are built.
