file(REMOVE_RECURSE
  "CMakeFiles/oltp_tiering.dir/oltp_tiering.cc.o"
  "CMakeFiles/oltp_tiering.dir/oltp_tiering.cc.o.d"
  "oltp_tiering"
  "oltp_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
