# Empty dependencies file for hwstar.
# This may be replaced when dependencies are built.
