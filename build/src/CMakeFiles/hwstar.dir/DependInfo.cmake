
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwstar/common/hash.cc" "src/CMakeFiles/hwstar.dir/hwstar/common/hash.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/common/hash.cc.o.d"
  "/root/repo/src/hwstar/common/logging.cc" "src/CMakeFiles/hwstar.dir/hwstar/common/logging.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/common/logging.cc.o.d"
  "/root/repo/src/hwstar/common/random.cc" "src/CMakeFiles/hwstar.dir/hwstar/common/random.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/common/random.cc.o.d"
  "/root/repo/src/hwstar/common/status.cc" "src/CMakeFiles/hwstar.dir/hwstar/common/status.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/common/status.cc.o.d"
  "/root/repo/src/hwstar/common/timer.cc" "src/CMakeFiles/hwstar.dir/hwstar/common/timer.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/common/timer.cc.o.d"
  "/root/repo/src/hwstar/engine/expression.cc" "src/CMakeFiles/hwstar.dir/hwstar/engine/expression.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/engine/expression.cc.o.d"
  "/root/repo/src/hwstar/engine/fused.cc" "src/CMakeFiles/hwstar.dir/hwstar/engine/fused.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/engine/fused.cc.o.d"
  "/root/repo/src/hwstar/engine/join_query.cc" "src/CMakeFiles/hwstar.dir/hwstar/engine/join_query.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/engine/join_query.cc.o.d"
  "/root/repo/src/hwstar/engine/parallel.cc" "src/CMakeFiles/hwstar.dir/hwstar/engine/parallel.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/engine/parallel.cc.o.d"
  "/root/repo/src/hwstar/engine/plan.cc" "src/CMakeFiles/hwstar.dir/hwstar/engine/plan.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/engine/plan.cc.o.d"
  "/root/repo/src/hwstar/engine/planner.cc" "src/CMakeFiles/hwstar.dir/hwstar/engine/planner.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/engine/planner.cc.o.d"
  "/root/repo/src/hwstar/engine/vectorized.cc" "src/CMakeFiles/hwstar.dir/hwstar/engine/vectorized.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/engine/vectorized.cc.o.d"
  "/root/repo/src/hwstar/engine/volcano.cc" "src/CMakeFiles/hwstar.dir/hwstar/engine/volcano.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/engine/volcano.cc.o.d"
  "/root/repo/src/hwstar/exec/affinity.cc" "src/CMakeFiles/hwstar.dir/hwstar/exec/affinity.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/exec/affinity.cc.o.d"
  "/root/repo/src/hwstar/exec/morsel.cc" "src/CMakeFiles/hwstar.dir/hwstar/exec/morsel.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/exec/morsel.cc.o.d"
  "/root/repo/src/hwstar/exec/task_scheduler.cc" "src/CMakeFiles/hwstar.dir/hwstar/exec/task_scheduler.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/exec/task_scheduler.cc.o.d"
  "/root/repo/src/hwstar/exec/thread_pool.cc" "src/CMakeFiles/hwstar.dir/hwstar/exec/thread_pool.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/exec/thread_pool.cc.o.d"
  "/root/repo/src/hwstar/hw/cycle_counter.cc" "src/CMakeFiles/hwstar.dir/hwstar/hw/cycle_counter.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/hw/cycle_counter.cc.o.d"
  "/root/repo/src/hwstar/hw/machine_model.cc" "src/CMakeFiles/hwstar.dir/hwstar/hw/machine_model.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/hw/machine_model.cc.o.d"
  "/root/repo/src/hwstar/hw/topology.cc" "src/CMakeFiles/hwstar.dir/hwstar/hw/topology.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/hw/topology.cc.o.d"
  "/root/repo/src/hwstar/kv/kv_store.cc" "src/CMakeFiles/hwstar.dir/hwstar/kv/kv_store.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/kv/kv_store.cc.o.d"
  "/root/repo/src/hwstar/kv/tiered_store.cc" "src/CMakeFiles/hwstar.dir/hwstar/kv/tiered_store.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/kv/tiered_store.cc.o.d"
  "/root/repo/src/hwstar/mem/aligned.cc" "src/CMakeFiles/hwstar.dir/hwstar/mem/aligned.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/mem/aligned.cc.o.d"
  "/root/repo/src/hwstar/mem/arena.cc" "src/CMakeFiles/hwstar.dir/hwstar/mem/arena.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/mem/arena.cc.o.d"
  "/root/repo/src/hwstar/mem/memory_pool.cc" "src/CMakeFiles/hwstar.dir/hwstar/mem/memory_pool.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/mem/memory_pool.cc.o.d"
  "/root/repo/src/hwstar/mem/numa_allocator.cc" "src/CMakeFiles/hwstar.dir/hwstar/mem/numa_allocator.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/mem/numa_allocator.cc.o.d"
  "/root/repo/src/hwstar/ops/aggregation.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/aggregation.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/aggregation.cc.o.d"
  "/root/repo/src/hwstar/ops/art.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/art.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/art.cc.o.d"
  "/root/repo/src/hwstar/ops/bloom_filter.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/bloom_filter.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/bloom_filter.cc.o.d"
  "/root/repo/src/hwstar/ops/btree.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/btree.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/btree.cc.o.d"
  "/root/repo/src/hwstar/ops/concurrent_hash_table.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/concurrent_hash_table.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/concurrent_hash_table.cc.o.d"
  "/root/repo/src/hwstar/ops/hash_table.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/hash_table.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/hash_table.cc.o.d"
  "/root/repo/src/hwstar/ops/hot_cold.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/hot_cold.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/hot_cold.cc.o.d"
  "/root/repo/src/hwstar/ops/join_nop.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/join_nop.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/join_nop.cc.o.d"
  "/root/repo/src/hwstar/ops/join_radix.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/join_radix.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/join_radix.cc.o.d"
  "/root/repo/src/hwstar/ops/join_sort_merge.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/join_sort_merge.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/join_sort_merge.cc.o.d"
  "/root/repo/src/hwstar/ops/merge.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/merge.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/merge.cc.o.d"
  "/root/repo/src/hwstar/ops/partition.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/partition.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/partition.cc.o.d"
  "/root/repo/src/hwstar/ops/selection.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/selection.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/selection.cc.o.d"
  "/root/repo/src/hwstar/ops/sort.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/sort.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/sort.cc.o.d"
  "/root/repo/src/hwstar/ops/topk.cc" "src/CMakeFiles/hwstar.dir/hwstar/ops/topk.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/ops/topk.cc.o.d"
  "/root/repo/src/hwstar/perf/counters.cc" "src/CMakeFiles/hwstar.dir/hwstar/perf/counters.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/perf/counters.cc.o.d"
  "/root/repo/src/hwstar/perf/harness.cc" "src/CMakeFiles/hwstar.dir/hwstar/perf/harness.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/perf/harness.cc.o.d"
  "/root/repo/src/hwstar/perf/report.cc" "src/CMakeFiles/hwstar.dir/hwstar/perf/report.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/perf/report.cc.o.d"
  "/root/repo/src/hwstar/sim/cache_sim.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/cache_sim.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/cache_sim.cc.o.d"
  "/root/repo/src/hwstar/sim/coherence.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/coherence.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/coherence.cc.o.d"
  "/root/repo/src/hwstar/sim/energy_model.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/energy_model.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/energy_model.cc.o.d"
  "/root/repo/src/hwstar/sim/flash_model.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/flash_model.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/flash_model.cc.o.d"
  "/root/repo/src/hwstar/sim/hierarchy.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/hierarchy.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/hierarchy.cc.o.d"
  "/root/repo/src/hwstar/sim/memory_trace.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/memory_trace.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/memory_trace.cc.o.d"
  "/root/repo/src/hwstar/sim/numa_model.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/numa_model.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/numa_model.cc.o.d"
  "/root/repo/src/hwstar/sim/offload_model.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/offload_model.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/offload_model.cc.o.d"
  "/root/repo/src/hwstar/sim/prefetcher.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/prefetcher.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/prefetcher.cc.o.d"
  "/root/repo/src/hwstar/sim/roofline.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/roofline.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/roofline.cc.o.d"
  "/root/repo/src/hwstar/sim/tlb.cc" "src/CMakeFiles/hwstar.dir/hwstar/sim/tlb.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/sim/tlb.cc.o.d"
  "/root/repo/src/hwstar/storage/column.cc" "src/CMakeFiles/hwstar.dir/hwstar/storage/column.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/storage/column.cc.o.d"
  "/root/repo/src/hwstar/storage/column_store.cc" "src/CMakeFiles/hwstar.dir/hwstar/storage/column_store.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/storage/column_store.cc.o.d"
  "/root/repo/src/hwstar/storage/compression.cc" "src/CMakeFiles/hwstar.dir/hwstar/storage/compression.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/storage/compression.cc.o.d"
  "/root/repo/src/hwstar/storage/pax.cc" "src/CMakeFiles/hwstar.dir/hwstar/storage/pax.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/storage/pax.cc.o.d"
  "/root/repo/src/hwstar/storage/row_store.cc" "src/CMakeFiles/hwstar.dir/hwstar/storage/row_store.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/storage/row_store.cc.o.d"
  "/root/repo/src/hwstar/storage/table.cc" "src/CMakeFiles/hwstar.dir/hwstar/storage/table.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/storage/table.cc.o.d"
  "/root/repo/src/hwstar/storage/types.cc" "src/CMakeFiles/hwstar.dir/hwstar/storage/types.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/storage/types.cc.o.d"
  "/root/repo/src/hwstar/workload/distributions.cc" "src/CMakeFiles/hwstar.dir/hwstar/workload/distributions.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/workload/distributions.cc.o.d"
  "/root/repo/src/hwstar/workload/tpch_like.cc" "src/CMakeFiles/hwstar.dir/hwstar/workload/tpch_like.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/workload/tpch_like.cc.o.d"
  "/root/repo/src/hwstar/workload/ycsb_like.cc" "src/CMakeFiles/hwstar.dir/hwstar/workload/ycsb_like.cc.o" "gcc" "src/CMakeFiles/hwstar.dir/hwstar/workload/ycsb_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
