file(REMOVE_RECURSE
  "libhwstar.a"
)
