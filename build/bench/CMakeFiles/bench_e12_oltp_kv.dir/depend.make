# Empty dependencies file for bench_e12_oltp_kv.
# This may be replaced when dependencies are built.
