file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_execution_models.dir/bench_e5_execution_models.cc.o"
  "CMakeFiles/bench_e5_execution_models.dir/bench_e5_execution_models.cc.o.d"
  "bench_e5_execution_models"
  "bench_e5_execution_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_execution_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
