# Empty compiler generated dependencies file for bench_e5_execution_models.
# This may be replaced when dependencies are built.
