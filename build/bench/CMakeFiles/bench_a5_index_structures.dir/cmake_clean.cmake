file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_index_structures.dir/bench_a5_index_structures.cc.o"
  "CMakeFiles/bench_a5_index_structures.dir/bench_a5_index_structures.cc.o.d"
  "bench_a5_index_structures"
  "bench_a5_index_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_index_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
