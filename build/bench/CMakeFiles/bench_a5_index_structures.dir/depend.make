# Empty dependencies file for bench_a5_index_structures.
# This may be replaced when dependencies are built.
