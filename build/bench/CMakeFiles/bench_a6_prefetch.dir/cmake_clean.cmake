file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_prefetch.dir/bench_a6_prefetch.cc.o"
  "CMakeFiles/bench_a6_prefetch.dir/bench_a6_prefetch.cc.o.d"
  "bench_a6_prefetch"
  "bench_a6_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
