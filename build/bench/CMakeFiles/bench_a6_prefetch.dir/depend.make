# Empty dependencies file for bench_a6_prefetch.
# This may be replaced when dependencies are built.
