file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_cache_cliffs.dir/bench_e7_cache_cliffs.cc.o"
  "CMakeFiles/bench_e7_cache_cliffs.dir/bench_e7_cache_cliffs.cc.o.d"
  "bench_e7_cache_cliffs"
  "bench_e7_cache_cliffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_cache_cliffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
