# Empty compiler generated dependencies file for bench_e7_cache_cliffs.
# This may be replaced when dependencies are built.
