file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_hash_tables.dir/bench_a2_hash_tables.cc.o"
  "CMakeFiles/bench_a2_hash_tables.dir/bench_a2_hash_tables.cc.o.d"
  "bench_a2_hash_tables"
  "bench_a2_hash_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_hash_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
