# Empty dependencies file for bench_a2_hash_tables.
# This may be replaced when dependencies are built.
