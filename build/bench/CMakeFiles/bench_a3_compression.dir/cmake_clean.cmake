file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_compression.dir/bench_a3_compression.cc.o"
  "CMakeFiles/bench_a3_compression.dir/bench_a3_compression.cc.o.d"
  "bench_a3_compression"
  "bench_a3_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
