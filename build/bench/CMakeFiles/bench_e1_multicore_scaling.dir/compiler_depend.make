# Empty compiler generated dependencies file for bench_e1_multicore_scaling.
# This may be replaced when dependencies are built.
