file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_numa_placement.dir/bench_e4_numa_placement.cc.o"
  "CMakeFiles/bench_e4_numa_placement.dir/bench_e4_numa_placement.cc.o.d"
  "bench_e4_numa_placement"
  "bench_e4_numa_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_numa_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
