# Empty dependencies file for bench_a4_bloom_join.
# This may be replaced when dependencies are built.
