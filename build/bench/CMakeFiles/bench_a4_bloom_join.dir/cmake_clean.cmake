file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_bloom_join.dir/bench_a4_bloom_join.cc.o"
  "CMakeFiles/bench_a4_bloom_join.dir/bench_a4_bloom_join.cc.o.d"
  "bench_a4_bloom_join"
  "bench_a4_bloom_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_bloom_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
