# Empty dependencies file for bench_e11_false_sharing.
# This may be replaced when dependencies are built.
