file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_false_sharing.dir/bench_e11_false_sharing.cc.o"
  "CMakeFiles/bench_e11_false_sharing.dir/bench_e11_false_sharing.cc.o.d"
  "bench_e11_false_sharing"
  "bench_e11_false_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_false_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
