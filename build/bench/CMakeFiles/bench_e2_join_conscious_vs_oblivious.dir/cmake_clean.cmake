file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_join_conscious_vs_oblivious.dir/bench_e2_join_conscious_vs_oblivious.cc.o"
  "CMakeFiles/bench_e2_join_conscious_vs_oblivious.dir/bench_e2_join_conscious_vs_oblivious.cc.o.d"
  "bench_e2_join_conscious_vs_oblivious"
  "bench_e2_join_conscious_vs_oblivious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_join_conscious_vs_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
