# Empty dependencies file for bench_e2_join_conscious_vs_oblivious.
# This may be replaced when dependencies are built.
