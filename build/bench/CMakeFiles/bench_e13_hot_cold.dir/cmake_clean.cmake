file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_hot_cold.dir/bench_e13_hot_cold.cc.o"
  "CMakeFiles/bench_e13_hot_cold.dir/bench_e13_hot_cold.cc.o.d"
  "bench_e13_hot_cold"
  "bench_e13_hot_cold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_hot_cold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
