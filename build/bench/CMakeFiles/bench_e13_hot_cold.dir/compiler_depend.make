# Empty compiler generated dependencies file for bench_e13_hot_cold.
# This may be replaced when dependencies are built.
