file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_offload.dir/bench_e10_offload.cc.o"
  "CMakeFiles/bench_e10_offload.dir/bench_e10_offload.cc.o.d"
  "bench_e10_offload"
  "bench_e10_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
