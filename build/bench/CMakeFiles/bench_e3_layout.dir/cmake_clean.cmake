file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_layout.dir/bench_e3_layout.cc.o"
  "CMakeFiles/bench_e3_layout.dir/bench_e3_layout.cc.o.d"
  "bench_e3_layout"
  "bench_e3_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
