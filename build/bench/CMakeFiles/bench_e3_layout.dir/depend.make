# Empty dependencies file for bench_e3_layout.
# This may be replaced when dependencies are built.
