# Empty dependencies file for bench_e8_energy.
# This may be replaced when dependencies are built.
