# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/sim_cache_test[1]_include.cmake")
include("/root/repo/build/tests/sim_hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/compression_test[1]_include.cmake")
include("/root/repo/build/tests/ops_selection_test[1]_include.cmake")
include("/root/repo/build/tests/ops_join_test[1]_include.cmake")
include("/root/repo/build/tests/ops_sort_test[1]_include.cmake")
include("/root/repo/build/tests/ops_agg_test[1]_include.cmake")
include("/root/repo/build/tests/ops_btree_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/engine_join_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/ops_art_test[1]_include.cmake")
include("/root/repo/build/tests/ops_bloom_test[1]_include.cmake")
include("/root/repo/build/tests/sim_coherence_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/hot_cold_test[1]_include.cmake")
include("/root/repo/build/tests/sim_properties_test[1]_include.cmake")
include("/root/repo/build/tests/ops_concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
include("/root/repo/build/tests/ops_topk_merge_test[1]_include.cmake")
include("/root/repo/build/tests/engine_fuzz_test[1]_include.cmake")
