file(REMOVE_RECURSE
  "CMakeFiles/ops_sort_test.dir/ops_sort_test.cc.o"
  "CMakeFiles/ops_sort_test.dir/ops_sort_test.cc.o.d"
  "ops_sort_test"
  "ops_sort_test.pdb"
  "ops_sort_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
