# Empty dependencies file for ops_sort_test.
# This may be replaced when dependencies are built.
