file(REMOVE_RECURSE
  "CMakeFiles/ops_btree_test.dir/ops_btree_test.cc.o"
  "CMakeFiles/ops_btree_test.dir/ops_btree_test.cc.o.d"
  "ops_btree_test"
  "ops_btree_test.pdb"
  "ops_btree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
