# Empty compiler generated dependencies file for ops_btree_test.
# This may be replaced when dependencies are built.
