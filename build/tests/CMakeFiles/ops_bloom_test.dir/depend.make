# Empty dependencies file for ops_bloom_test.
# This may be replaced when dependencies are built.
