file(REMOVE_RECURSE
  "CMakeFiles/ops_bloom_test.dir/ops_bloom_test.cc.o"
  "CMakeFiles/ops_bloom_test.dir/ops_bloom_test.cc.o.d"
  "ops_bloom_test"
  "ops_bloom_test.pdb"
  "ops_bloom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_bloom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
