file(REMOVE_RECURSE
  "CMakeFiles/ops_concurrent_test.dir/ops_concurrent_test.cc.o"
  "CMakeFiles/ops_concurrent_test.dir/ops_concurrent_test.cc.o.d"
  "ops_concurrent_test"
  "ops_concurrent_test.pdb"
  "ops_concurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
