# Empty compiler generated dependencies file for ops_concurrent_test.
# This may be replaced when dependencies are built.
