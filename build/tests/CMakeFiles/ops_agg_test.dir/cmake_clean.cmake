file(REMOVE_RECURSE
  "CMakeFiles/ops_agg_test.dir/ops_agg_test.cc.o"
  "CMakeFiles/ops_agg_test.dir/ops_agg_test.cc.o.d"
  "ops_agg_test"
  "ops_agg_test.pdb"
  "ops_agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
