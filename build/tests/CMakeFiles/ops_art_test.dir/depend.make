# Empty dependencies file for ops_art_test.
# This may be replaced when dependencies are built.
