file(REMOVE_RECURSE
  "CMakeFiles/ops_art_test.dir/ops_art_test.cc.o"
  "CMakeFiles/ops_art_test.dir/ops_art_test.cc.o.d"
  "ops_art_test"
  "ops_art_test.pdb"
  "ops_art_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_art_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
