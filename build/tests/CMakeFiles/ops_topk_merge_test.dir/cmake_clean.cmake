file(REMOVE_RECURSE
  "CMakeFiles/ops_topk_merge_test.dir/ops_topk_merge_test.cc.o"
  "CMakeFiles/ops_topk_merge_test.dir/ops_topk_merge_test.cc.o.d"
  "ops_topk_merge_test"
  "ops_topk_merge_test.pdb"
  "ops_topk_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_topk_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
