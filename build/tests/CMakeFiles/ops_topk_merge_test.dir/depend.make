# Empty dependencies file for ops_topk_merge_test.
# This may be replaced when dependencies are built.
