file(REMOVE_RECURSE
  "CMakeFiles/sim_coherence_test.dir/sim_coherence_test.cc.o"
  "CMakeFiles/sim_coherence_test.dir/sim_coherence_test.cc.o.d"
  "sim_coherence_test"
  "sim_coherence_test.pdb"
  "sim_coherence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_coherence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
