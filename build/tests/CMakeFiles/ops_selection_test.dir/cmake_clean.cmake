file(REMOVE_RECURSE
  "CMakeFiles/ops_selection_test.dir/ops_selection_test.cc.o"
  "CMakeFiles/ops_selection_test.dir/ops_selection_test.cc.o.d"
  "ops_selection_test"
  "ops_selection_test.pdb"
  "ops_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
