# Empty dependencies file for ops_selection_test.
# This may be replaced when dependencies are built.
