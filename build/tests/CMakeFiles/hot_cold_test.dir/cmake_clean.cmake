file(REMOVE_RECURSE
  "CMakeFiles/hot_cold_test.dir/hot_cold_test.cc.o"
  "CMakeFiles/hot_cold_test.dir/hot_cold_test.cc.o.d"
  "hot_cold_test"
  "hot_cold_test.pdb"
  "hot_cold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_cold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
