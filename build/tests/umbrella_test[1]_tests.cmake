add_test([=[UmbrellaTest.CoreTypesReachable]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=UmbrellaTest.CoreTypesReachable]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[UmbrellaTest.CoreTypesReachable]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS UmbrellaTest.CoreTypesReachable)
